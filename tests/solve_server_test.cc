// core::SolveServer end to end: multi-tenant solves on one simulated
// chip. The load-bearing contracts:
//   * physics is bitwise independent of tenancy -- a deck solved while
//     another tenant shares the chip produces the same solve, checksum
//     and residual as a solo run (only host scheduling and the
//     simulated SPE partition differ);
//   * a plan-cache hit is invisible in the results: resubmitting a deck
//     yields a byte-identical RunReport, just cheaper to plan;
//   * admission is typed and airtight: unparsable, lint-rejected and
//     over-budget jobs throw AdmissionError with the right reason and
//     never reach a worker.
#include <chrono>
#include <filesystem>
#include <thread>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/plan_cache.h"
#include "server/solve_server.h"
#include "sim/fault.h"

namespace cellsweep::core {
namespace {

// Mirrors examples/decks/tiny8.deck / tiny8.stencil: fast enough to
// solve functionally many times per test run.
const char* const kTinyDeck =
    "it 8  jt 8  kt 8\n"
    "dx 0.04  dy 0.04  dz 0.04\n"
    "mk 4  mmi 3\n"
    "sn 6  moments 6\n"
    "iterations 2  fixup_from 1\n"
    "material benchmark 1.0 0.5 0.2 0.05 source 1.0\n";

const char* const kTinyStencil =
    "nx 8  ny 8  nz 8\n"
    "bx 4  by 4  bz 4\n"
    "iterations 2\n";

JobRequest sweep_req(const std::string& name) {
  JobRequest req;
  req.kind = JobKind::kSweep;
  req.name = name;
  req.text = kTinyDeck;
  req.mode = RunMode::kFunctional;
  return req;
}

JobRequest stencil_req(const std::string& name) {
  JobRequest req;
  req.kind = JobKind::kStencil;
  req.name = name;
  req.text = kTinyStencil;
  req.mode = RunMode::kFunctional;
  return req;
}

// Large enough that a trace-driven solve occupies its worker for a
// good fraction of a second -- the cancellation tests need a window in
// which the job is reliably still queued (behind one of these) or
// reliably still running.
const char* const kSlowDeck =
    "it 24  jt 24  kt 24\n"
    "dx 0.04  dy 0.04  dz 0.04\n"
    "mk 4  mmi 3\n"
    "sn 6  moments 6\n"
    "iterations 4  fixup_from 1\n"
    "material benchmark 1.0 0.5 0.2 0.05 source 1.0\n";

JobRequest slow_req(const std::string& name) {
  JobRequest req;
  req.kind = JobKind::kSweep;
  req.name = name;
  req.text = kSlowDeck;
  req.mode = RunMode::kTraceDriven;
  return req;
}

AdmissionError::Reason reason_of(SolveServer& server,
                                 const JobRequest& req) {
  try {
    server.submit(req);
  } catch (const AdmissionError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "submit() accepted a job that must be rejected";
  return AdmissionError::Reason::kParse;
}

TEST(SolveServer, RunsAMixedStreamToCompletion) {
  ServerConfig cfg;
  cfg.tenants = 2;
  cfg.host_threads = 2;
  SolveServer server(cfg);
  for (int i = 0; i < 2; ++i) {
    server.submit(sweep_req("sweep-" + std::to_string(i)));
    server.submit(stencil_req("stencil-" + std::to_string(i)));
  }
  const std::vector<JobResult> results = server.drain();
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_GT(r.report.seconds, 0.0) << r.name;
  }
  const SolveServer::Stats st = server.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.completed, 4u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.rejected, 0u);
  // Both tenants held chip claims at some point.
  EXPECT_GE(server.allocator_stats().claims, 4u);
}

TEST(SolveServer, TenancyNeverPerturbsThePhysics) {
  // Solo reference: one tenant, whole chip, one job at a time.
  JobResult solo_sweep, solo_stencil;
  {
    SolveServer solo(ServerConfig{});
    solo_sweep = solo.wait(solo.submit(sweep_req("solo")));
    solo_stencil = solo.wait(solo.submit(stencil_req("solo")));
  }
  ASSERT_TRUE(solo_sweep.ok);
  ASSERT_TRUE(solo_stencil.ok);
  ASSERT_TRUE(solo_sweep.report.solve.has_value());

  // Contended run: two tenants racing for the same chip and host pool.
  ServerConfig cfg;
  cfg.tenants = 2;
  cfg.host_threads = 2;
  SolveServer server(cfg);
  for (int i = 0; i < 3; ++i) {
    server.submit(sweep_req("sweep-" + std::to_string(i)));
    server.submit(stencil_req("stencil-" + std::to_string(i)));
  }
  for (const JobResult& r : server.drain()) {
    ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
    if (r.kind == JobKind::kSweep) {
      ASSERT_TRUE(r.report.solve.has_value()) << r.name;
      EXPECT_EQ(r.report.solve->final_change,
                solo_sweep.report.solve->final_change) << r.name;
      EXPECT_EQ(r.report.solve->iterations,
                solo_sweep.report.solve->iterations) << r.name;
      EXPECT_EQ(r.report.absorption, solo_sweep.report.absorption)
          << r.name;
      EXPECT_EQ(r.report.leakage.total(), solo_sweep.report.leakage.total())
          << r.name;
      EXPECT_EQ(r.report.flops, solo_sweep.report.flops) << r.name;
      EXPECT_EQ(r.report.cell_solves, solo_sweep.report.cell_solves)
          << r.name;
    } else {
      EXPECT_EQ(r.checksum, solo_stencil.checksum) << r.name;
      EXPECT_EQ(r.residual, solo_stencil.residual) << r.name;
      EXPECT_EQ(r.report.flops, solo_stencil.report.flops) << r.name;
    }
  }
}

TEST(SolveServer, PlanCacheHitIsByteIdentical) {
  SolveServer server(ServerConfig{});  // one tenant: runs serialize
  const JobResult first = server.wait(server.submit(sweep_req("cold")));
  const JobResult second = server.wait(server.submit(sweep_req("warm")));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  // The cached quadrature + warmed kernel calibration must change
  // nothing observable: every metric byte-identical.
  EXPECT_EQ(first.report.seconds, second.report.seconds);
  EXPECT_EQ(first.report.grind_seconds, second.report.grind_seconds);
  EXPECT_EQ(first.report.traffic_bytes, second.report.traffic_bytes);
  EXPECT_EQ(first.report.flops, second.report.flops);
  EXPECT_EQ(first.report.dma_commands, second.report.dma_commands);
  EXPECT_EQ(first.report.solve->final_change,
            second.report.solve->final_change);

  // Stencil specs cache under a separate fingerprint kind.
  const JobResult s1 = server.wait(server.submit(stencil_req("s-cold")));
  const JobResult s2 = server.wait(server.submit(stencil_req("s-warm")));
  EXPECT_FALSE(s1.plan_cache_hit);
  EXPECT_TRUE(s2.plan_cache_hit);
  EXPECT_EQ(s1.checksum, s2.checksum);
  EXPECT_EQ(s1.report.seconds, s2.report.seconds);

  const PlanCache::Stats pc = server.plan_cache_stats();
  EXPECT_EQ(pc.entries, 2u);
  EXPECT_EQ(pc.hits, 2u);    // one warm resubmit per workload kind
  EXPECT_EQ(pc.misses, 2u);  // one cold build per workload kind
  EXPECT_EQ(pc.evictions, 0u);

  // The hit/miss story also surfaces through the metrics snapshot.
  const MetricsRegistry::Snapshot snap = server.metrics_snapshot();
  const MetricsRegistry::Family* hits =
      snap.find("cellsweep_plan_cache_hits_total");
  ASSERT_NE(hits, nullptr);
  EXPECT_DOUBLE_EQ(hits->entries[0].value, 2.0);
  const MetricsRegistry::Family* misses =
      snap.find("cellsweep_plan_cache_misses_total");
  ASSERT_NE(misses, nullptr);
  EXPECT_DOUBLE_EQ(misses->entries[0].value, 2.0);
}

TEST(SolveServer, AdmissionRejectsUnparsableInput) {
  SolveServer server(ServerConfig{});
  JobRequest req = sweep_req("garbage");
  req.text = "this is not a deck\n";
  EXPECT_EQ(reason_of(server, req), AdmissionError::Reason::kParse);
  JobRequest sreq = stencil_req("garbage");
  sreq.text = "nx banana\n";
  EXPECT_EQ(reason_of(server, sreq), AdmissionError::Reason::kParse);
  EXPECT_EQ(server.stats().rejected, 2u);
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST(SolveServer, AdmissionRejectsOverLsBudgetDeck) {
  // The tiny deck needs a few tens of KB of simulated LS; a budget just
  // above the fixed overhead but below the buffer footprint must bounce
  // it with the typed reason, before any scheduling.
  ServerConfig cfg;
  cfg.ls_budget_bytes = 5 * 1024;
  SolveServer server(cfg);
  EXPECT_EQ(reason_of(server, sweep_req("too-big")),
            AdmissionError::Reason::kLsBudget);
  EXPECT_EQ(reason_of(server, stencil_req("too-big")),
            AdmissionError::Reason::kLsBudget);
  EXPECT_EQ(server.stats().rejected, 2u);
  // The same deck is admitted once the budget allows it.
  ServerConfig roomy;
  roomy.ls_budget_bytes = 256 * 1024;
  SolveServer ok_server(roomy);
  EXPECT_TRUE(ok_server.wait(ok_server.submit(sweep_req("fits"))).ok);
}

TEST(SolveServer, AdmissionRejectsOverGridBudgetDeck) {
  ServerConfig cfg;
  cfg.grid_cell_budget = 100;  // the tiny deck has 8^3 = 512 cells
  SolveServer server(cfg);
  EXPECT_EQ(reason_of(server, sweep_req("too-many-cells")),
            AdmissionError::Reason::kGridBudget);
  EXPECT_EQ(reason_of(server, stencil_req("too-many-cells")),
            AdmissionError::Reason::kGridBudget);
}

TEST(SolveServer, QueueLimitRejectsWithTypedReason) {
  ServerConfig cfg;
  cfg.tenants = 1;
  cfg.queue_limit = 1;
  SolveServer server(cfg);
  // With one tenant busy and one slot, a burst must eventually bounce.
  bool bounced = false;
  for (int i = 0; i < 64 && !bounced; ++i) {
    try {
      server.submit(sweep_req("burst-" + std::to_string(i)));
    } catch (const AdmissionError& e) {
      EXPECT_EQ(e.reason(), AdmissionError::Reason::kQueueFull);
      bounced = true;
    }
  }
  EXPECT_TRUE(bounced);
  for (const JobResult& r : server.drain()) EXPECT_TRUE(r.ok) << r.error;
}

TEST(SolveServer, WaitRejectsUnknownIds) {
  SolveServer server(ServerConfig{});
  EXPECT_THROW(server.wait(0), std::invalid_argument);
  EXPECT_THROW(server.wait(42), std::invalid_argument);
}

TEST(SolveServer, LifecycleTraceIsCompleteAndOrdered) {
  ServerConfig cfg;
  cfg.tenants = 2;
  SolveServer server(cfg);
  for (int i = 0; i < 2; ++i) {
    server.submit(sweep_req("sweep-" + std::to_string(i)));
    server.submit(stencil_req("stencil-" + std::to_string(i)));
  }
  const std::vector<JobResult> results = server.drain();
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& r : results) {
    ASSERT_TRUE(r.ok) << r.name;
    const JobTrace& t = r.trace;
    EXPECT_TRUE(t.complete) << r.name;
    EXPECT_GE(t.tenant, 0);
    EXPECT_LT(t.tenant, cfg.tenants);
    // Every phase reached, in lifecycle order on one monotonic clock.
    ASSERT_TRUE(JobTrace::reached(t.admit_start_s)) << r.name;
    EXPECT_LE(t.admit_start_s, t.admit_end_s);
    EXPECT_LE(t.admit_end_s, t.enqueue_s);
    EXPECT_LE(t.enqueue_s, t.dequeue_s);
    EXPECT_LE(t.dequeue_s, t.plan_start_s);
    EXPECT_LE(t.plan_start_s, t.plan_end_s);
    EXPECT_LE(t.plan_end_s, t.run_start_s);
    EXPECT_LE(t.run_start_s, t.run_end_s);
    EXPECT_LE(t.run_end_s, t.report_s);
    EXPECT_GE(t.queue_wait_s(), 0.0);
    EXPECT_GE(t.service_s(), 0.0);
    EXPECT_GE(t.claim_wait_s, 0.0);
    EXPECT_LE(t.claim_wait_s, t.service_s());
  }
  // traced_jobs() mirrors the results in submission order.
  const std::vector<TracedJob> traced = server.traced_jobs();
  ASSERT_EQ(traced.size(), 4u);
  for (std::size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].id, results[i].id);
    EXPECT_EQ(traced[i].name, results[i].name);
  }
}

TEST(SolveServer, MetricsSnapshotCountsTheWorkload) {
  ServerConfig cfg;
  cfg.tenants = 2;
  SolveServer server(cfg);
  for (int i = 0; i < 3; ++i)
    server.submit(sweep_req("job-" + std::to_string(i)));
  server.drain();
  const MetricsRegistry::Snapshot snap = server.metrics_snapshot();

  const MetricsRegistry::Family* admitted =
      snap.find("cellsweep_jobs_admitted_total");
  ASSERT_NE(admitted, nullptr);
  EXPECT_EQ(admitted->type, MetricType::kCounter);
  ASSERT_EQ(admitted->entries.size(), 1u);
  EXPECT_DOUBLE_EQ(admitted->entries[0].value, 3.0);

  // Per-tenant service histograms: total observations == jobs run.
  const MetricsRegistry::Family* service =
      snap.find("cellsweep_service_seconds");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->type, MetricType::kHistogram);
  std::uint64_t observed = 0;
  for (const MetricsRegistry::Entry& e : service->entries)
    observed += e.hist.count();
  EXPECT_EQ(observed, 3u);

  // Derived families from the shared subsystems are merged in.
  EXPECT_NE(snap.find("cellsweep_plan_cache_hits_total"), nullptr);
  EXPECT_NE(snap.find("cellsweep_spe_claims_total"), nullptr);
  EXPECT_NE(snap.find("cellsweep_pool_utilization"), nullptr);

  // Families arrive sorted by name (the byte-stability contract).
  for (std::size_t i = 1; i < snap.families.size(); ++i)
    EXPECT_LT(snap.families[i - 1].name, snap.families[i].name);

  // The queue-depth series sampled real admissions.
  const MetricsRegistry::Family* depth =
      snap.find("cellsweep_queue_depth_series");
  ASSERT_NE(depth, nullptr);
  ASSERT_EQ(depth->entries.size(), 1u);
  EXPECT_GE(depth->entries[0].samples.size(), 3u);
}

TEST(SolveServer, StopMidQueueReportsPartialSpans) {
  ServerConfig cfg;
  cfg.tenants = 1;
  SolveServer server(cfg);
  std::vector<int> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(server.submit(sweep_req("q-" + std::to_string(i))));
  server.stop();

  // Shutdown is sticky: new work bounces with the typed reason.
  EXPECT_EQ(reason_of(server, sweep_req("late")),
            AdmissionError::Reason::kShutdown);

  const std::vector<JobResult> results = server.drain();
  ASSERT_EQ(results.size(), ids.size());
  const SolveServer::Stats st = server.stats();
  EXPECT_EQ(st.submitted, ids.size());
  EXPECT_GE(st.cancelled, 1u);  // the burst outran the single tenant
  EXPECT_EQ(st.failed, 0u);     // cancelled is its own terminal state
  // Conservation: every admitted job lands in exactly one bucket.
  EXPECT_EQ(st.completed + st.failed + st.cancelled, ids.size());

  std::uint64_t cancelled_seen = 0;
  for (const JobResult& r : results) {
    if (r.ok) {
      EXPECT_TRUE(r.trace.complete) << r.name;
      EXPECT_FALSE(r.cancelled) << r.name;
      continue;
    }
    ++cancelled_seen;
    EXPECT_TRUE(r.cancelled) << r.name;
    EXPECT_EQ(r.error.rfind("cancelled:", 0), 0u) << r.error;
    // The partial trace keeps the admission-side stamps, never enters
    // the run, and still gets a publication stamp.
    const JobTrace& t = r.trace;
    EXPECT_FALSE(t.complete);
    EXPECT_TRUE(JobTrace::reached(t.admit_start_s));
    EXPECT_TRUE(JobTrace::reached(t.enqueue_s));
    EXPECT_FALSE(JobTrace::reached(t.run_start_s));
    EXPECT_TRUE(JobTrace::reached(t.report_s)) << r.name;
    EXPECT_GE(t.report_s, t.enqueue_s) << r.name;
  }
  EXPECT_EQ(cancelled_seen, st.cancelled);
  // stop() is idempotent and the destructor after it is a no-op.
  server.stop();
}

TEST(SolveServer, FlightRecorderDumpsOnFailover) {
  const std::string dir = ::testing::TempDir() + "cellsweep-flightrec";
  std::filesystem::create_directories(dir);
  ServerConfig cfg;
  cfg.tenants = 1;
  cfg.faults = sim::parse_fault_spec("seed=42,spe=7:down");
  cfg.flight_recorder_path = dir + "/flightrec";
  SolveServer server(cfg);
  JobRequest req = sweep_req("faulted");
  req.mode = RunMode::kTraceDriven;  // fault plan drives the machine
  const JobResult r = server.wait(server.submit(req));
  ASSERT_TRUE(r.ok) << r.error;  // failover degrades, not fails
  EXPECT_TRUE(r.report.faults.enabled);
  EXPECT_GE(r.report.faults.spes_disabled, 1);

  std::size_t dumps = 0;
  for (const auto& ent : std::filesystem::directory_iterator(dir))
    if (ent.path().filename().string().rfind("flightrec-", 0) == 0) ++dumps;
  EXPECT_GE(dumps, 1u);

  // The in-process ring saw the whole lifecycle including the
  // failover marker.
  bool saw_failover = false;
  for (const FlightRecorder::Event& e : server.flight_recorder().events())
    if (e.kind == "failover") saw_failover = true;
  EXPECT_TRUE(saw_failover);
  std::filesystem::remove_all(dir);
}

TEST(SolveServer, CancelQueuedJobPublishesBeforeWaitReturns) {
  const std::string dir = ::testing::TempDir() + "cellsweep-cancelq";
  std::filesystem::create_directories(dir);
  ServerConfig cfg;
  cfg.tenants = 1;
  cfg.flight_recorder_path = dir + "/flightrec";
  SolveServer server(cfg);
  const int blocker = server.submit(slow_req("blocker"));
  const int target = server.submit(sweep_req("victim"));
  // The single worker is (at best) on the blocker; the victim is still
  // queued, so cancel() must take the immediate-publish path.
  EXPECT_TRUE(server.cancel(target));
  const JobResult r = server.wait(target);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.rfind("cancelled:", 0), 0u) << r.error;
  EXPECT_FALSE(r.trace.complete);
  EXPECT_FALSE(JobTrace::reached(r.trace.run_start_s));
  EXPECT_TRUE(JobTrace::reached(r.trace.report_s));

  // Dump-before-publish: the moment wait() returned the cancelled
  // result, the post-mortem file was already on disk.
  std::size_t dumps = 0;
  for (const auto& ent : std::filesystem::directory_iterator(dir))
    if (ent.path().filename().string().rfind("flightrec-", 0) == 0) ++dumps;
  EXPECT_GE(dumps, 1u);

  // Cancelling a finished job reports false, never a double publish.
  EXPECT_FALSE(server.cancel(target));
  EXPECT_FALSE(server.cancel(9999));
  const JobResult rb = server.wait(blocker);
  EXPECT_TRUE(rb.ok) << rb.error;
  EXPECT_FALSE(server.cancel(blocker));

  const SolveServer::Stats st = server.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.failed, 0u);
  std::filesystem::remove_all(dir);
}

TEST(SolveServer, CancelMidRunKeepsStampsMonotone) {
  ServerConfig cfg;
  cfg.tenants = 1;
  SolveServer server(cfg);
  const int id = server.submit(slow_req("long-haul"));
  // Wait until the worker has actually dequeued the job, then cancel:
  // the cooperative flag aborts the pipeline at a wave boundary.
  bool dequeued = false;
  for (int spin = 0; spin < 10000 && !dequeued; ++spin) {
    for (const FlightRecorder::Event& e : server.flight_recorder().events())
      if (e.kind == "dequeue" && e.job_id == id) dequeued = true;
    if (!dequeued) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(dequeued);
  EXPECT_TRUE(server.cancel(id));
  const JobResult r = server.wait(id);
  ASSERT_TRUE(r.cancelled) << "job finished before the cancel landed; "
                              "kSlowDeck needs to be slower";
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cancelled"), std::string::npos) << r.error;
  EXPECT_FALSE(r.trace.complete);

  // Every stamp the run reached is present and monotone: admission ->
  // enqueue -> dequeue -> plan -> run_start -> run_end -> report.
  const JobTrace& t = r.trace;
  EXPECT_TRUE(JobTrace::reached(t.admit_start_s));
  EXPECT_TRUE(JobTrace::reached(t.run_start_s));
  EXPECT_TRUE(JobTrace::reached(t.run_end_s));  // stamped at abort
  EXPECT_TRUE(JobTrace::reached(t.report_s));
  EXPECT_LE(t.admit_start_s, t.admit_end_s);
  EXPECT_LE(t.admit_end_s, t.enqueue_s);
  EXPECT_LE(t.enqueue_s, t.dequeue_s);
  EXPECT_LE(t.dequeue_s, t.run_start_s);
  EXPECT_LE(t.run_start_s, t.run_end_s);
  EXPECT_LE(t.run_end_s, t.report_s);

  // The recorder saw the cancel after the dequeue (lifecycle order).
  std::size_t i_dequeue = 0, i_cancel = 0;
  const auto events = server.flight_recorder().events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].job_id != id) continue;
    if (events[i].kind == "dequeue") i_dequeue = i;
    if (events[i].kind == "cancel") i_cancel = i;
  }
  EXPECT_GT(i_cancel, i_dequeue);

  const SolveServer::Stats st = server.stats();
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed + st.failed + st.cancelled, 1u);
}

TEST(SolveServer, QueueDeadlineExpiryCancelsInsteadOfRunningLate) {
  ServerConfig cfg;
  cfg.tenants = 1;
  SolveServer server(cfg);
  server.submit(slow_req("blocker"));
  JobRequest doomed = sweep_req("doomed");
  doomed.deadline_ms = 1;  // expires while the blocker holds the worker
  const int id_doomed = server.submit(doomed);
  JobRequest relaxed = sweep_req("relaxed");
  relaxed.deadline_ms = 600000;
  const int id_relaxed = server.submit(relaxed);

  const JobResult rd = server.wait(id_doomed);
  EXPECT_TRUE(rd.cancelled);
  EXPECT_NE(rd.error.find("deadline"), std::string::npos) << rd.error;
  EXPECT_FALSE(JobTrace::reached(rd.trace.run_start_s));
  EXPECT_FALSE(rd.trace.complete);

  // A deadline with slack never fires; the job runs normally.
  const JobResult rr = server.wait(id_relaxed);
  EXPECT_TRUE(rr.ok) << rr.error;
  EXPECT_FALSE(rr.cancelled);
  EXPECT_TRUE(rr.trace.complete);

  // The cancelled metric carries the typed reason.
  const MetricsRegistry::Snapshot snap = server.metrics_snapshot();
  const MetricsRegistry::Family* fam =
      snap.find("cellsweep_jobs_cancelled_total");
  ASSERT_NE(fam, nullptr);
  bool saw_deadline = false;
  for (const MetricsRegistry::Entry& e : fam->entries)
    if (e.label == "reason=\"deadline\"") saw_deadline = true;
  EXPECT_TRUE(saw_deadline);
}

TEST(SolveServer, TenantWeightsAndQuotasReachTheAllocator) {
  // A quota'd tenant can never hold more SPEs than its cap: with one
  // tenant quota'd to 2 on an 8-SPE chip, a solo run still succeeds
  // (physics identical) while the allocator never grants past 2.
  ServerConfig cfg;
  cfg.tenants = 1;
  cfg.tenant_weights = {3};
  cfg.tenant_quotas = {2};
  SolveServer server(cfg);
  const JobResult r = server.wait(server.submit(sweep_req("capped")));
  EXPECT_TRUE(r.ok) << r.error;
  // The run degraded to 2 SPEs (quota), visible in the report.
  ASSERT_TRUE(r.report.solve.has_value());
  EXPECT_GT(r.report.seconds, 0.0);
  EXPECT_LE(server.allocator_stats().peak_tenants, 1);
}

TEST(PlanCache, BoundedCacheEvictsFifo) {
  PlanCache cache(2);
  const OptimizationStage s = OptimizationStage::kSpeLsPoke;
  const std::uint64_t k1 = PlanCache::fingerprint("sweep", s, "one");
  const std::uint64_t k2 = PlanCache::fingerprint("sweep", s, "two");
  const std::uint64_t k3 = PlanCache::fingerprint("sweep", s, "three");
  auto plan = std::make_shared<const CachedPlan>();
  cache.insert(k1, plan);
  cache.insert(k2, plan);
  EXPECT_NE(cache.find(k1), nullptr);  // k1 still resident
  cache.insert(k3, plan);              // evicts k1 (oldest inserted)
  PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(cache.find(k1), nullptr);
  EXPECT_NE(cache.find(k2), nullptr);
  EXPECT_NE(cache.find(k3), nullptr);
  // Re-inserting an evicted key is a fresh insertion, not a race loss.
  cache.insert(k1, plan);
  st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(cache.find(k2), nullptr);  // k2 was the oldest this time
}

TEST(PlanCacheFingerprint, SeparatesKindStageAndContent) {
  const OptimizationStage s0 = OptimizationStage::kSpeLsPoke;
  const OptimizationStage s1 = OptimizationStage::kSpeSimd;
  const std::uint64_t sweep_fp = PlanCache::fingerprint("sweep", s0, "x");
  // Identical bytes submitted as a stencil spec must never collide with
  // the same bytes as a sweep deck.
  EXPECT_NE(sweep_fp, PlanCache::fingerprint("stencil", s0, "x"));
  EXPECT_NE(sweep_fp, PlanCache::fingerprint("sweep", s1, "x"));
  EXPECT_NE(sweep_fp, PlanCache::fingerprint("sweep", s0, "y"));
  EXPECT_EQ(sweep_fp, PlanCache::fingerprint("sweep", s0, "x"));
  // The separators are part of the hash: moving a byte across the
  // kind/content boundary changes the fingerprint.
  EXPECT_NE(PlanCache::fingerprint("ab", s0, "c"),
            PlanCache::fingerprint("a", s0, "bc"));
}

}  // namespace
}  // namespace cellsweep::core
