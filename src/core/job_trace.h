// Host-time job-lifecycle tracing for the solve server.
//
// The simulated-time observability stack (sim::TraceSink, DESIGN.md
// section 2b) attributes every simulated tick of one run; it says
// nothing about where a *job's host wall-clock* goes between submit()
// and its JobResult -- queue wait behind other tenants, plan-cache
// build, blocking on the SPE allocator. That is exactly the
// measurement ROADMAP's QoS work needs, so the server stamps every job
// with a JobTrace: host-monotonic timestamps for each lifecycle phase
//
//   admission -> queue wait -> plan-cache lookup ->
//   SPE-allocator claim wait -> run -> report
//
// and write_job_trace_events() renders the finished traces as
// per-tenant tracks through the same sim::ChromeTraceWriter JSON
// emitter the machine model uses -- one file domain is simulated
// microseconds, this one is host microseconds since server start; the
// two are never mixed in one file.
//
// Observation-only contract (same as every sink since PR 2): the host
// clock never feeds back into admission, scheduling or the simulated
// machine, so solved physics and simulated timing are byte-identical
// with tracing on or off (pinned by the solo-run perf baselines).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace cellsweep::sim {
class ChromeTraceWriter;
}

namespace cellsweep::core {

/// Monotonic host clock anchored at construction. now_s()/now_ticks()
/// are steady (never jump backward); wall_ms() is the one wall-clock
/// escape hatch, used only to timestamp flight-recorder dump files.
class HostClock {
 public:
  HostClock() : epoch_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction.
  double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// sim::Ticks (femtoseconds) since construction -- the host-time
  /// domain fed to ChromeTraceWriter, whose emitter divides by 1e9 to
  /// trace-format microseconds.
  sim::Tick now_ticks() const {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - epoch_);
    return static_cast<sim::Tick>(ns.count()) * 1'000'000ULL;
  }

  /// Milliseconds since the Unix epoch (wall clock, for file names).
  static std::uint64_t wall_ms() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// One job's lifecycle timestamps, in host seconds on the server's
/// HostClock. kUnset (-1) marks a phase the job never reached -- a
/// cancelled job keeps its admission and enqueue stamps and nothing
/// after, which is precisely what the shutdown drain reports.
struct JobTrace {
  static constexpr double kUnset = -1.0;
  static bool reached(double t) { return t >= 0.0; }

  /// Worker that ran (or cancelled) the job; -1 = never dequeued.
  int tenant = -1;
  double admit_start_s = kUnset;  ///< submit() began parse + lint
  double admit_end_s = kUnset;    ///< admission checks passed
  double enqueue_s = kUnset;      ///< entered the job queue
  double dequeue_s = kUnset;      ///< a tenant worker picked it up
  double plan_start_s = kUnset;   ///< plan-cache lookup (+ build) began
  double plan_end_s = kUnset;     ///< plan ready (hit or built)
  double run_start_s = kUnset;    ///< solver handed the job
  double run_end_s = kUnset;      ///< solver returned
  double report_s = kUnset;       ///< result published to the client
  /// Host seconds the run spent blocked in SpeAllocator::claim()
  /// (0 when the chip had room immediately).
  double claim_wait_s = 0.0;
  /// False: the server stopped before this job ran; the trace is the
  /// partial prefix up to enqueue (or dequeue).
  bool complete = false;

  double queue_wait_s() const {
    return reached(dequeue_s) && reached(enqueue_s) ? dequeue_s - enqueue_s
                                                    : kUnset;
  }
  double service_s() const {
    return reached(run_end_s) && reached(run_start_s)
               ? run_end_s - run_start_s
               : kUnset;
  }
};

/// One finished (or cancelled) job as the trace emitter needs it:
/// identity plus its lifecycle stamps. The server builds these from
/// JobResults in submission order.
struct TracedJob {
  int id = 0;
  std::string name;
  JobTrace trace;
};

/// Renders @p jobs as Chrome trace events on @p writer: an "admission"
/// track for submit()-side phases and one "tenant-N" track per worker
/// carrying queue-wait, plan, spe-claim-wait and solve spans (nested,
/// named after the job). Host-time domain: ts is host microseconds
/// since server start. Call from one thread (the writer is
/// ThreadConfined) after the jobs finished.
void write_job_trace_events(sim::ChromeTraceWriter& writer,
                            const std::vector<TracedJob>& jobs);

}  // namespace cellsweep::core
