#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace cellsweep::util {
namespace {

std::string printf_str(const char* fmt, double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v, unit);
  return buf;
}

}  // namespace

std::string format_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return printf_str("%.3g %s", seconds, "s");
  if (abs >= 1e-3) return printf_str("%.3g %s", seconds * 1e3, "ms");
  if (abs >= 1e-6) return printf_str("%.3g %s", seconds * 1e6, "us");
  return printf_str("%.3g %s", seconds * 1e9, "ns");
}

std::string format_bytes(double bytes) {
  const double abs = std::fabs(bytes);
  if (abs >= 1e9) return printf_str("%.3g %s", bytes / 1e9, "GB");
  if (abs >= 1e6) return printf_str("%.3g %s", bytes / 1e6, "MB");
  if (abs >= 1e3) return printf_str("%.3g %s", bytes / 1e3, "KB");
  return printf_str("%.3g %s", bytes, "B");
}

std::string format_flops(double flops_per_second) {
  const double abs = std::fabs(flops_per_second);
  if (abs >= 1e9) return printf_str("%.3g %s", flops_per_second / 1e9, "Gflops/s");
  if (abs >= 1e6) return printf_str("%.3g %s", flops_per_second / 1e6, "Mflops/s");
  return printf_str("%.3g %s", flops_per_second, "flops/s");
}

std::string format_speedup(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", ratio);
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace cellsweep::util
