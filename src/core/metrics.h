// Machine-readable run metrics.
//
// Serializes a RunReport -- top-line timing, the Section 6 bounds, DMA
// counters, the MFC queue-occupancy histogram and the per-SPE stall
// breakdown (busy / DMA-wait / sync-wait / idle) -- as a single JSON
// object, so runs can be diffed, plotted and regression-tracked without
// scraping the human-readable tables. Non-finite values (the empty
// RunningStats contract returns NaN for all moments) serialize as JSON
// null.
#pragma once

#include <iosfwd>

namespace cellsweep::core {

struct RunReport;

/// Writes @p r as one JSON object to @p os.
void write_metrics_json(std::ostream& os, const RunReport& r);

}  // namespace cellsweep::core
