// StreamingPipeline: the workload-agnostic Cell streaming discipline.
//
// The paper's central lesson is that the hard part of Cell programming
// is not the physics but the streaming discipline: budgeting the 256 KB
// local store, rotating chunks through double-buffered DMA waves, and
// ordering dispatch so the shared FIFO resources (PPE dispatcher, MIC,
// EIB) see near-monotone request streams. That discipline is identical
// across every related Cell port (Sweep3D, lattice QCD, biomolecular
// MD), so it lives here once, extracted from the Sweep3D orchestrator.
//
// The split of responsibilities:
//   * The pipeline owns the machine (cell::CellProcessor), the wave
//     arithmetic (spes x buffers chunks per wave), grant ordering,
//     put-tag gating, double-buffer rotation, stall accounting, fault
//     injection / SPE failover, observability (trace sink, profiler,
//     hazard observer) and the final RunReport assembly.
//   * A workload supplies, per batch of independent chunks: the chunk
//     list with each chunk's DMA transfer plan and kernel cost
//     (StreamChunkSpec -- the chunk provider + kernel functor), a
//     dependency policy mapping a chunk index to its upstream readiness
//     (the wavefront / stencil neighbor rule), and, at construction,
//     the local-store placement (resident regions + staging-buffer
//     size -- the LS budget policy). Writebacks and completion reports
//     follow the CBEA report-after-writeback rule for every workload.
//
// Clients: core::TimingEngine re-hosts the Sweep3D wave loop on this
// pipeline with byte-identical timing, counters and traces (gated by
// the perf baselines); workloads/stencil ports a lattice-QCD-style
// even/odd red-black stencil onto it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cellsim/cell_processor.h"
#include "core/config.h"
#include "core/report.h"
#include "core/spe_allocator.h"
#include "core/workload.h"
#include "sim/counters.h"
#include "sim/fault.h"
#include "sim/trace.h"
#include "util/concurrency_check.h"

namespace cellsweep::analysis {
class Diagnostics;
class HazardChecker;
}

namespace cellsweep::core {

/// Thrown by run_batch when StreamConfig::cancel reads true at a wave
/// boundary: the run aborts cooperatively between chunks (never
/// mid-wave -- a yielded staging buffer could still be in flight). The
/// claim is released by the destructor; the partially advanced report
/// is abandoned with it.
class RunCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Local-store placement policy of one workload: named resident
/// regions (constants, tables) allocated once per SPE, then
/// StreamConfig::buffers staging buffers of @p buffer_bytes each. The
/// pipeline performs the allocations on every SPE at construction and
/// throws cell::LocalStoreOverflow when the budget does not fit --
/// the same check the deck/spec linters run statically.
struct LsPlacement {
  std::vector<std::pair<std::string, std::size_t>> resident;
  std::size_t buffer_bytes = 0;
};

/// One chunk of streaming work, as the workload describes it: the DMA
/// transfer plan (what must be staged and written back) plus the
/// priced kernel (the kernel functor's cost on the SPU pipeline).
struct StreamChunkSpec {
  /// Position in the batch's dependency index space; must lie in
  /// [0, batch size). The dependency policy addresses upstream chunks
  /// by this index.
  int index = 0;
  /// DMA sizes and LS footprint of this chunk (bulk vs face gets,
  /// puts, row granularity).
  TransferPlan plan;
  /// Healthy-path SPU cycles of the chunk kernel (fault plans may
  /// stretch the executed time; this value also feeds the Section 6
  /// compute bound).
  double kernel_cycles = 0;
  /// Trace span label for the kernel (must outlive the run).
  const char* kernel_name = "kernel";
  std::uint64_t flops = 0;
  /// Workload-defined solve count of this chunk (cell-angle solves for
  /// the sweep, site updates for the stencil); accumulated into
  /// RunReport::cell_solves and the grind time.
  std::uint64_t work_units = 0;
  /// Pipeline schedule of one kernel invocation, folded into the
  /// per-SPE "pipeline" counter set.
  cell::PipelineStats stats;
};

/// Upstream view handed to a dependency policy: `ready[i]` is when
/// chunk i of the *previous* batch satisfies a downstream reader
/// (completion time under centralized dispatch, where faces travel
/// through main memory; compute end under distributed dispatch, where
/// faces forward SPE-to-SPE from the upstream local store). `hop` is
/// the extra latency a dependency edge pays (one atomic operation
/// under distributed dispatch, zero when centralized); `barrier` is
/// the floor every chunk of the batch inherits.
struct UpstreamView {
  const std::vector<sim::Tick>& ready;
  sim::Tick barrier = 0;
  sim::Tick hop = 0;
};

/// Maps a chunk index to the time its upstream dependencies are
/// satisfied. Must return at least view.barrier; with an empty
/// view.ready (first batch after a block barrier) it should return
/// view.barrier. Pure: called multiple times per chunk.
using DependencyPolicy = std::function<sim::Tick(const UpstreamView&, int)>;

/// Per-chunk timing hook: invoked after each kernel with the chunk's
/// spec and its [start, end) execution interval. Observation only --
/// no simulated tick may depend on it.
using ChunkTimingHook =
    std::function<void(const StreamChunkSpec&, sim::Tick, sim::Tick)>;

/// The workload-agnostic streaming engine (see file comment).
class StreamingPipeline {
 public:
  /// Builds the machine, attaches observability and faults, and
  /// performs the LS placement on every SPE. Throws
  /// cell::LocalStoreOverflow when the placement exceeds the local
  /// store and sim::FaultError when the fault plan disables every SPE.
  /// With cfg.spe_allocator set, additionally claims SPEs from the
  /// shared allocator (blocking until at least cfg.min_spes are free);
  /// the allocator's width must match cfg.chip.num_spes
  /// (std::invalid_argument otherwise).
  StreamingPipeline(const StreamConfig& cfg, const LsPlacement& placement);
  /// Releases any SPE claim still held (finish() already released it on
  /// the normal path).
  ~StreamingPipeline();

  /// Streams one batch of independent chunks through the machine.
  /// @p new_block opens a new pipeline block: all outstanding work
  /// becomes a hard barrier and the upstream history resets (the sweep
  /// uses it at (octant, angle-block, K-block) boundaries; a free-
  /// running stencil never does after the first batch).
  ///
  /// QoS inside the batch: at each wave boundary the pipeline (a)
  /// throws RunCancelled when StreamConfig::cancel reads true, and (b)
  /// yields SPEs at chunk granularity when a strictly higher-weight
  /// claim is blocked (SpeAllocator::priority_pressure) -- the
  /// not-yet-started chunks are reassigned to the surviving claim and
  /// the wave narrows. Without a cancel flag or a higher-weight waiter
  /// both checks are pure observation and the batch is byte-identical
  /// to the pre-QoS arithmetic.
  void run_batch(const std::vector<StreamChunkSpec>& specs,
                 const DependencyPolicy& deps, bool new_block);

  /// Accounts one whole-field streaming pass through main memory at
  /// the current horizon (the sweep's per-iteration source-moment
  /// rebuild, the stencil's per-iteration residual reduction). The
  /// pass serializes: no later work starts before it drains.
  void memory_pass(const char* name, double bytes);

  /// Drains outstanding work and assembles the machine-side report
  /// (timing, stall partition, counter tree, fault summary). Under
  /// CELLSWEEP_HAZARD_CHECK (engine-owned checker only) throws
  /// analysis::HazardError when protocol violations were found.
  RunReport finish();

  /// Current completion horizon; monotone across batches.
  sim::Tick horizon() const noexcept { return next_barrier_; }
  double horizon_seconds() const noexcept {
    return sim::seconds_from_ticks(next_barrier_);
  }

  /// External gate: no work fed after this call may start before
  /// @p at. Models a blocking boundary receive (the RECV of Figure 2)
  /// when this chip is one rank of a process-level decomposition.
  void gate(sim::Tick at) {
    next_barrier_ = std::max(next_barrier_, at);
    reports_horizon_ = std::max(reports_horizon_, at);
  }

  const cell::CellProcessor& machine() const noexcept { return machine_; }

  /// Installs the per-chunk kernel timing hook (may be empty).
  void set_chunk_hook(ChunkTimingHook hook) { chunk_hook_ = std::move(hook); }

 private:
  struct SpeClock {
    sim::Tick request_at = 0;   ///< ready to ask for the next chunk
    sim::Tick compute_free = 0; ///< SPU free for the next kernel
    sim::Tick put_done = 0;     ///< last writeback completed
    /// Chunks ever assigned to this SPE; chunk k streams through LS
    /// buffer k % buffers (the double-buffer rotation).
    std::uint64_t served = 0;
    // Stall accounting (ticks; observation only, never read back into
    // the clocks above).
    sim::Tick busy = 0;
    sim::Tick dma_wait = 0;
    sim::Tick sync_wait = 0;
    /// Per-kernel pipeline schedules folded over the run (the Section
    /// 5.1 counters, published into the "spe<N>/pipeline" counter set).
    cell::PipelineStats pipe;
  };

  /// Next live SPE in cyclic order. Detects SPEs that reach their
  /// fail-after-chunks threshold: the victim is declared dead, its
  /// chunk is re-dispatched to the next survivor, and @p extra
  /// accumulates the PPE watchdog detection delay the re-dispatched
  /// chunk pays. Throws sim::FaultError when no SPE is left.
  int pick_spe(sim::Tick& extra);
  /// Splits the SPU wait [base, max(dma_ready, sync_ready)) between the
  /// DMA-wait and sync-wait buckets of @p spe and emits wait spans.
  void account_wait(int spe_index, sim::Tick base, sim::Tick dma_ready,
                    sim::Tick sync_ready);
  /// Emits issue/queue/transfer spans for one DMA command.
  void trace_dma(int spe_index, const char* name, sim::Tick submitted,
                 const cell::DmaCompletion& c, bool to_memory);
  /// Builds one MFC request for a transfer class of @p plan (per-row
  /// commands or one DMA list at the configured granularity).
  cell::DmaRequest make_request(const TransferPlan& plan, cell::DmaDir dir,
                                std::size_t bytes_total) const;
  /// Batch-boundary claim adjustment (allocator tenants only): under
  /// pressure yields down to min(need, fair share), with slack regrows
  /// toward `need` = ceil(batch chunks / buffers) clamped to
  /// [min_spes, chip width]. Rebuilds claimed_.
  void rebalance(std::size_t batch_chunks);

  /// A pipeline is confined to its tenant thread: the simulated clocks
  /// are plain fields, and only claim_ transitions (which go through
  /// the allocator's lock) are ever visible across threads. The guard
  /// turns an accidental cross-thread run_batch/finish into a
  /// deterministic report instead of a silent data race.
  util::ThreadConfined confined_;

  StreamConfig cfg_;
  cell::CellProcessor machine_;

  std::vector<SpeClock> spes_;
  sim::Tick barrier_ = 0;       ///< hard barrier (block boundary)
  sim::Tick next_barrier_ = 0;  ///< completion horizon of all work so far
  sim::Tick reports_horizon_ = 0;  ///< when the PPE has seen all reports
  int rr_spe_ = 0;              ///< cyclic SPE assignment cursor
  /// Readiness of each chunk of the previous batch in the current
  /// block, indexed by StreamChunkSpec::index: completion time (faces
  /// through memory) and compute end (faces forwarded SPE-to-SPE).
  std::vector<sim::Tick> prev_completion_;
  std::vector<sim::Tick> prev_compute_end_;
  std::size_t ls_high_water_ = 0;
  /// LS offset of each chunk staging buffer (identical on every SPE;
  /// the hazard annotations use them to name DMA targets).
  std::vector<std::size_t> buffer_offsets_;
  /// Global chunk sequence: the token binding a chunk's grant, DMAs,
  /// kernel and report together for the protocol checker.
  std::uint64_t token_seq_ = 0;

  // Protocol observability (null observer: every emit is one branch).
  cell::MachineObserver* observer_ = nullptr;
  /// CELLSWEEP_HAZARD_CHECK strict mode: pipeline-owned checker + sink
  /// (finish() turns its errors into analysis::HazardError).
  std::unique_ptr<analysis::Diagnostics> owned_diags_;
  std::unique_ptr<analysis::HazardChecker> owned_checker_;

  // Observability (null sink: tracks stay empty, every emit is one
  // branch).
  sim::TraceSink* sink_ = nullptr;
  int ppe_track_ = 0;
  int eib_track_ = 0;
  int mic_track_ = 0;
  std::vector<int> spe_tracks_;

  ChunkTimingHook chunk_hook_;

  std::uint64_t flops_ = 0;
  std::uint64_t work_units_ = 0;
  std::uint64_t chunks_ = 0;
  double total_compute_cycles_ = 0;

  // Fault injection and graceful degradation (inert when the plan is
  // disabled: alive_ stays all-true and pick_spe reduces to the plain
  // cyclic cursor).
  sim::FaultPlan fault_plan_;
  std::vector<char> alive_;   ///< one flag per SPE
  std::vector<char> failed_;  ///< died mid-sweep (subset of !alive_)
  int spes_disabled_ = 0;
  int spes_failed_ = 0;
  std::uint64_t redispatched_chunks_ = 0;
  sim::Tick failover_ticks_ = 0;

  // Multi-tenant SPE partitioning (inert without cfg.spe_allocator:
  // claimed_ stays all-true and pick_spe / the wave width see every
  // SPE, byte-identical to the single-tenant build).
  SpeAllocator::Claim claim_;
  std::vector<char> claimed_;  ///< one flag per SPE: ours right now
  int min_spes_ = 1;
  int min_claimed_ = 0;  ///< smallest claim the run ever held
  int max_claimed_ = 0;  ///< largest claim the run ever held
  std::uint64_t rebalance_shrinks_ = 0;
  std::uint64_t rebalance_expands_ = 0;
  /// Chunk-granularity yields to a higher-weight waiter (mid-batch, at
  /// wave boundaries), as opposed to the batch-boundary rebalances.
  std::uint64_t preempt_yields_ = 0;
};

}  // namespace cellsweep::core
