// core::StreamingPipeline under a synthetic identity workload: chunks
// with hand-written transfer plans and kernel prices, so every
// invariant of the streaming discipline (counter partition, hazard
// cleanliness, observability purity) is checked independently of any
// real workload's arithmetic.
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "analysis/hazard.h"
#include "cellsim/local_store.h"
#include "core/spe_allocator.h"
#include "core/streaming_pipeline.h"
#include "sim/trace.h"

namespace cellsweep {
namespace {

core::TransferPlan tiny_plan() {
  core::TransferPlan plan;
  plan.row_bytes = 512;
  plan.bulk_get_rows = 8;
  plan.face_get_rows = 2;
  plan.put_rows = 4;
  plan.extra_get_bytes = 64;
  plan.extra_put_bytes = 16;
  plan.ls_buffer_bytes = 16 * 1024;
  return plan;
}

/// A batch of @p n identical chunks: fixed kernel price, one unit of
/// work each. The "identity" workload -- no physics, pure streaming.
std::vector<core::StreamChunkSpec> identity_batch(int n) {
  std::vector<core::StreamChunkSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    core::StreamChunkSpec s;
    s.index = c;
    s.plan = tiny_plan();
    s.kernel_cycles = 5000;
    s.kernel_name = "identity";
    s.flops = 1000;
    s.work_units = 1;
    s.stats.kernels = 1;
    s.stats.cycles = 5000;
    s.stats.instructions = 1200;
    s.stats.issue_cycles = 900;
    s.stats.dual_issues = 300;
    s.stats.even_pipe_insts = 800;
    s.stats.odd_pipe_insts = 400;
    s.stats.dep_stall_cycles = 4100;
    s.stats.flops = 1000;
    specs.push_back(s);
  }
  return specs;
}

/// Chain dependency: chunk c of a batch waits on chunk c of the
/// previous batch (plus the barrier floor, plus the protocol hop).
sim::Tick chain_deps(const core::UpstreamView& u, int c) {
  if (u.ready.empty()) return u.barrier;
  return std::max(u.barrier, u.ready[static_cast<std::size_t>(c)] + u.hop);
}

core::RunReport run_identity(const core::StreamConfig& cfg,
                             int batches = 4, int chunks = 24) {
  core::LsPlacement placement;
  placement.resident.emplace_back("identity-constants", 2048);
  placement.buffer_bytes = tiny_plan().ls_buffer_bytes;
  core::StreamingPipeline pipeline(cfg, placement);
  const std::vector<core::StreamChunkSpec> batch = identity_batch(chunks);
  for (int b = 0; b < batches; ++b) {
    if (b == batches / 2) pipeline.memory_pass("identity-pass", 1 << 20);
    pipeline.run_batch(batch, chain_deps, b == 0);
  }
  return pipeline.finish();
}

TEST(StreamingPipeline, CountersExactlyPartitionRunTicks) {
  const core::RunReport r = run_identity(core::StreamConfig{});
  const double run_ticks = r.counters.value("run_ticks");
  ASSERT_GT(run_ticks, 0.0);
  // Tick arithmetic stays far below 2^53, so the per-SPE engine buckets
  // must partition the run EXACTLY -- any drift is an accounting leak.
  int spes = 0;
  for (const sim::CounterSet& child : r.counters.children()) {
    if (child.name().rfind("spe", 0) != 0 || child.name() == "spe_total")
      continue;
    ++spes;
    const double accounted =
        child.value("busy_ticks") + child.value("dma_wait_ticks") +
        child.value("sync_wait_ticks") + child.value("idle_ticks");
    EXPECT_EQ(accounted, run_ticks) << child.name();
  }
  EXPECT_EQ(spes, core::StreamConfig{}.chip.num_spes);
  // Workload totals flow through unchanged.
  EXPECT_EQ(r.counters.value("chunks"), 4.0 * 24.0);
  EXPECT_EQ(r.counters.value("cell_solves"), 4.0 * 24.0);
  EXPECT_EQ(r.counters.value("flops"), 4.0 * 24.0 * 1000.0);
  EXPECT_EQ(r.cell_solves, 4u * 24u);
}

TEST(StreamingPipeline, HazardCleanUnderEveryProtocol) {
  for (cell::SyncProtocol sync :
       {cell::SyncProtocol::kMailbox, cell::SyncProtocol::kLsPoke,
        cell::SyncProtocol::kAtomicDistributed}) {
    core::StreamConfig cfg;
    cfg.sync = sync;
    analysis::Diagnostics diags;
    analysis::HazardChecker checker(&diags, cfg.chip);
    cfg.hazard = &checker;
    run_identity(cfg);
    EXPECT_FALSE(diags.has_errors())
        << "protocol " << cell::sync_protocol_name(sync) << ": "
        << (diags.entries().empty() ? "" : diags.entries()[0].to_string());
  }
}

TEST(StreamingPipeline, SinksDoNotPerturbTiming) {
  const core::RunReport bare = run_identity(core::StreamConfig{});

  core::StreamConfig cfg;
  sim::ChromeTraceWriter writer;
  sim::TimeSlicedProfiler profiler(32);
  cfg.trace_sink = &writer;
  cfg.profiler = &profiler;
  core::LsPlacement placement;
  placement.resident.emplace_back("identity-constants", 2048);
  placement.buffer_bytes = tiny_plan().ls_buffer_bytes;
  core::StreamingPipeline pipeline(cfg, placement);
  std::uint64_t hook_calls = 0;
  pipeline.set_chunk_hook([&hook_calls](const core::StreamChunkSpec&,
                                        sim::Tick start, sim::Tick end) {
    ++hook_calls;
    EXPECT_LT(start, end);
  });
  const std::vector<core::StreamChunkSpec> batch = identity_batch(24);
  for (int b = 0; b < 4; ++b) {
    if (b == 2) pipeline.memory_pass("identity-pass", 1 << 20);
    pipeline.run_batch(batch, chain_deps, b == 0);
  }
  const core::RunReport traced = pipeline.finish();

  // Observation only: every simulated number is bit-identical with the
  // full observability stack attached.
  EXPECT_EQ(traced.seconds, bare.seconds);
  EXPECT_EQ(traced.counters.value("run_ticks"),
            bare.counters.value("run_ticks"));
  EXPECT_EQ(traced.traffic_bytes, bare.traffic_bytes);
  EXPECT_EQ(traced.dma_commands, bare.dma_commands);
  EXPECT_EQ(hook_calls, 4u * 24u);
  EXPECT_GT(writer.event_count(), 0u);
}

TEST(StreamingPipeline, HorizonIsMonotoneAndGated) {
  core::LsPlacement placement;
  placement.buffer_bytes = tiny_plan().ls_buffer_bytes;
  core::StreamingPipeline pipeline(core::StreamConfig{}, placement);
  const std::vector<core::StreamChunkSpec> batch = identity_batch(8);
  pipeline.run_batch(batch, chain_deps, true);
  const sim::Tick after_first = pipeline.horizon();
  EXPECT_GT(after_first, 0);
  pipeline.gate(after_first + 12345);
  EXPECT_GE(pipeline.horizon(), after_first + 12345);
  pipeline.run_batch(batch, chain_deps, false);
  EXPECT_GT(pipeline.horizon(), after_first + 12345);
  pipeline.finish();
}

TEST(StreamingPipeline, SoloAllocatorRunIsByteIdenticalToNoAllocator) {
  const core::RunReport bare = run_identity(core::StreamConfig{});

  // A solo tenant on a shared allocator keeps the whole chip (no
  // pressure, no shrink), so every simulated number must be
  // bit-identical to the allocator-free build -- the contract that
  // keeps the single-tenant perf baselines valid.
  core::StreamConfig cfg;
  core::SpeAllocator alloc(cfg.chip.num_spes);
  cfg.spe_allocator = &alloc;
  const core::RunReport shared = run_identity(cfg);
  EXPECT_EQ(shared.seconds, bare.seconds);
  EXPECT_EQ(shared.traffic_bytes, bare.traffic_bytes);
  EXPECT_EQ(shared.dma_commands, bare.dma_commands);
  EXPECT_EQ(shared.counters.value("run_ticks"),
            bare.counters.value("run_ticks"));
  EXPECT_EQ(alloc.free_count(), cfg.chip.num_spes);  // released at finish

  // The allocator counter subtree is gated exactly like "faults": only
  // an allocator-attached run grows one.
  EXPECT_EQ(bare.counters.find_child("allocator"), nullptr);
  const sim::CounterSet* a = shared.counters.find_child("allocator");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value("spes_final"), cfg.chip.num_spes);
  EXPECT_EQ(a->value("spes_min"), cfg.chip.num_spes);
  EXPECT_EQ(a->value("spes_max"), cfg.chip.num_spes);
  EXPECT_EQ(a->value("rebalance_shrinks"), 0.0);
}

TEST(StreamingPipeline, SqueezedTenantStillCompletesAllWork) {
  // Pin half the chip under a blocker claim: the pipeline must run the
  // identity workload to completion on the remaining SPEs, slower but
  // with identical workload totals.
  const core::RunReport bare = run_identity(core::StreamConfig{});
  core::StreamConfig cfg;
  core::SpeAllocator alloc(cfg.chip.num_spes);
  core::SpeAllocator::Claim blocker =
      alloc.claim(cfg.chip.num_spes / 2, cfg.chip.num_spes / 2);
  cfg.spe_allocator = &alloc;
  const core::RunReport squeezed = run_identity(cfg);
  alloc.release(blocker);
  EXPECT_EQ(squeezed.chunks, bare.chunks);
  EXPECT_EQ(squeezed.flops, bare.flops);
  EXPECT_EQ(squeezed.traffic_bytes, bare.traffic_bytes);
  EXPECT_GE(squeezed.seconds, bare.seconds);
  const sim::CounterSet* a = squeezed.counters.find_child("allocator");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value("spes_max"), cfg.chip.num_spes / 2.0);
}

TEST(StreamingPipeline, AllocatorWidthMismatchThrows) {
  core::StreamConfig cfg;
  core::SpeAllocator narrow(cfg.chip.num_spes + 1);
  cfg.spe_allocator = &narrow;
  core::LsPlacement placement;
  placement.buffer_bytes = tiny_plan().ls_buffer_bytes;
  EXPECT_THROW(core::StreamingPipeline(cfg, placement),
               std::invalid_argument);
}

TEST(StreamingPipeline, TwoPipelinesShareOneChipUnderPressure) {
  // Two tenants on one allocator, run from two host threads. Timing
  // depends on host interleaving (who yields when), but both runs must
  // complete all their work and release every SPE.
  core::SpeAllocator alloc(core::StreamConfig{}.chip.num_spes);
  core::RunReport r1, r2;
  std::thread t1([&] {
    core::StreamConfig cfg;
    cfg.spe_allocator = &alloc;
    r1 = run_identity(cfg, 8, 24);
  });
  std::thread t2([&] {
    core::StreamConfig cfg;
    cfg.spe_allocator = &alloc;
    r2 = run_identity(cfg, 8, 24);
  });
  t1.join();
  t2.join();
  const core::RunReport bare = run_identity(core::StreamConfig{}, 8, 24);
  for (const core::RunReport* r : {&r1, &r2}) {
    EXPECT_EQ(r->chunks, bare.chunks);
    EXPECT_EQ(r->flops, bare.flops);
    EXPECT_EQ(r->traffic_bytes, bare.traffic_bytes);
  }
  EXPECT_EQ(alloc.free_count(), alloc.num_spes());
  EXPECT_GE(alloc.stats().claims, 2u);
}

TEST(StreamingPipeline, CancelFlagAbortsBetweenWavesAndReleasesTheChip) {
  core::SpeAllocator alloc(core::StreamConfig{}.chip.num_spes);
  core::StreamConfig cfg;
  cfg.spe_allocator = &alloc;
  std::atomic<bool> cancel{false};
  cfg.cancel = &cancel;

  // An armed-but-never-set flag changes nothing observable.
  const core::RunReport bare = run_identity(core::StreamConfig{});
  const core::RunReport flagged = run_identity(cfg);
  EXPECT_EQ(flagged.seconds, bare.seconds);
  EXPECT_EQ(flagged.counters.value("run_ticks"),
            bare.counters.value("run_ticks"));

  // A set flag aborts at the first wave boundary; the claim must still
  // be released on the unwind path (no SPE leaks past the exception).
  cancel.store(true);
  core::LsPlacement placement;
  placement.resident.emplace_back("identity-constants", 2048);
  placement.buffer_bytes = tiny_plan().ls_buffer_bytes;
  {
    core::StreamingPipeline pipeline(cfg, placement);
    const std::vector<core::StreamChunkSpec> batch = identity_batch(24);
    EXPECT_THROW(pipeline.run_batch(batch, chain_deps, true),
                 core::RunCancelled);
  }
  EXPECT_EQ(alloc.free_count(), alloc.num_spes());
}

TEST(StreamingPipeline, HigherWeightWaiterPreemptsBetweenChunks) {
  // A weight-1 run holds the chip; a weight-3 claim arrives while a
  // batch is in flight (a claim queued *before* the batch would be
  // served by the batch-boundary rebalance instead). The pipeline must
  // yield within the batch -- chunk granularity, not the next batch
  // boundary -- finish all its work on the narrowed claim, and count
  // the preemption.
  core::SpeAllocator alloc(core::StreamConfig{}.chip.num_spes);
  core::StreamConfig cfg;
  cfg.spe_allocator = &alloc;
  cfg.claim_weight = 1;

  core::LsPlacement placement;
  placement.resident.emplace_back("identity-constants", 2048);
  placement.buffer_bytes = tiny_plan().ls_buffer_bytes;
  core::StreamingPipeline pipeline(cfg, placement);  // claims all 8

  core::SpeAllocator::Claim heavy;
  std::atomic<bool> granted{false};
  std::thread claimant;
  std::uint64_t chunks_seen = 0;
  // The hook runs host-side between simulated chunks: launch the heavy
  // claim a few chunks into the first wave, then hold the pipeline
  // thread (pure host time, no simulated tick) until the claimant is
  // visibly queued -- so the next inter-wave check reliably sees it.
  pipeline.set_chunk_hook([&](const core::StreamChunkSpec&, sim::Tick,
                              sim::Tick) {
    if (++chunks_seen != 4) return;
    claimant = std::thread([&] {
      heavy = alloc.claim(1, 4, /*weight=*/3);
      granted.store(true);
    });
    for (int spin = 0; spin < 10000 && !alloc.pressure(); ++spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const std::vector<core::StreamChunkSpec> batch = identity_batch(24);
  for (int b = 0; b < 4; ++b) pipeline.run_batch(batch, chain_deps, b == 0);
  const core::RunReport r = pipeline.finish();
  claimant.join();
  EXPECT_TRUE(granted.load());
  alloc.release(heavy);

  // All work completed despite the mid-batch squeeze...
  EXPECT_EQ(r.chunks, 4u * 24u);
  EXPECT_EQ(r.flops, 4u * 24u * 1000u);
  // ... and the preemption is visible in the allocator subtree: the
  // run shrank below the full chip at least once, between chunks.
  const sim::CounterSet* a = r.counters.find_child("allocator");
  ASSERT_NE(a, nullptr);
  EXPECT_GE(a->value("preempt_yields"), 1.0);
  EXPECT_LT(a->value("spes_min"), core::StreamConfig{}.chip.num_spes);
  EXPECT_EQ(alloc.free_count(), alloc.num_spes());
}

TEST(StreamingPipeline, OverfullPlacementThrows) {
  core::StreamConfig cfg;
  core::LsPlacement placement;
  placement.buffer_bytes = cfg.chip.local_store_bytes;  // cannot fit
  EXPECT_THROW(core::StreamingPipeline(cfg, placement),
               cell::LocalStoreOverflow);
}

}  // namespace
}  // namespace cellsweep
