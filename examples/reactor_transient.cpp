// Reactor transient: time-stepped source evolution.
//
// Sweep3D's outer structure is "several iterations for each time step,
// until the solution converges" (paper, Section 3). This example runs a
// multi-time-step transient on the strongly scattering reactor problem:
// the fuel-pin source decays exponentially and each time step re-solves
// transport to convergence, reporting power and iteration counts -- the
// workload shape the paper's MMI/MK pipelining exists for.
//
//   $ ./reactor_transient [--cube=24] [--steps=6] [--decay=0.35]
#include <cmath>
#include <iostream>
#include <memory>

#include "core/orchestrator.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/units.h"

using namespace cellsweep;

int main(int argc, char** argv) {
  util::CliParser cli("Reactor transient on the simulated Cell BE");
  cli.add_flag("cube", "24", "cube size (cells per side)");
  cli.add_flag("steps", "6", "time steps");
  cli.add_flag("decay", "0.35", "source decay constant per step");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }
  int n, steps;
  double decay;
  try {
    n = static_cast<int>(cli.get_int("cube"));
    steps = static_cast<int>(cli.get_int("steps"));
    decay = cli.get_double("decay");
  } catch (const util::CliError& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 1;
  }

  const sweep::Problem base = sweep::Problem::reactor(n);
  std::cout << "Reactor problem: " << n << "^3 cells, scattering ratio "
            << base.max_scattering_ratio() << " (slow source iteration)\n\n";

  sweep::SweepConfig scfg;
  scfg.mk = 1;
  for (int d = 1; d <= 10; ++d)
    if (n % d == 0) scfg.mk = d;
  scfg.mmi = 3;
  scfg.max_iterations = 400;
  scfg.fixup_from_iteration = 0;
  scfg.epsilon = 1e-7;

  sweep::SnQuadrature quad(6);
  util::TextTable table({"step", "pin source", "iterations", "power (abs)",
                         "leakage", "simulated Cell time"});

  double total_sim_time = 0;
  for (int step = 0; step < steps; ++step) {
    // Decay the pin source for this step's problem.
    std::vector<sweep::Material> mats = base.materials();
    const double scale = std::exp(-decay * step);
    for (auto& m : mats) m.q_ext *= scale;
    std::vector<std::uint8_t> cells(base.grid().cells());
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
          cells[base.grid().index(i, j, k)] = base.material_index(i, j, k);
    const sweep::Problem problem(base.grid(), mats, std::move(cells));

    // Physics: converge this step.
    sweep::SweepState<double> state(problem, quad, 2,
                                    sweep::kBenchmarkMoments);
    const sweep::SolveResult solve =
        sweep::solve_source_iteration(state, scfg);

    // Machine model: what would this step cost on the Cell?
    core::CellSweepConfig ccfg =
        core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
    ccfg.sweep = scfg;
    ccfg.sweep.max_iterations = solve.iterations;
    ccfg.sweep.epsilon = 0.0;  // replay the converged iteration count
    core::CellSweep3D runner(problem, ccfg);
    const core::RunReport r = runner.run(core::RunMode::kTraceDriven);
    total_sim_time += r.seconds;

    table.add_row({std::to_string(step),
                   [&] { char b[32];
                         std::snprintf(b, sizeof b, "%.3f", scale);
                         return std::string(b); }(),
                   std::to_string(solve.iterations),
                   [&] { char b[32];
                         std::snprintf(b, sizeof b, "%.4f",
                                       state.absorption_rate());
                         return std::string(b); }(),
                   [&] { char b[32];
                         std::snprintf(b, sizeof b, "%.4f",
                                       state.leakage().total());
                         return std::string(b); }(),
                   util::format_seconds(r.seconds)});
  }
  table.print(std::cout);
  std::cout << "\nTotal simulated Cell time for the transient: "
            << util::format_seconds(total_sim_time) << "\n";
  return 0;
}
