// SolveServer: sweep-as-a-service over the simulated Cell chip.
//
// PR 5's headline finding -- at paper cube sizes the sweep is
// dependency-chain-bound and leaves most of the chip slack -- turns
// deck_runner's one-shot workflow into a multi-tenant question: what
// throughput does one chip sustain when several solves share it? This
// server answers it end to end:
//
//   * a job queue accepting sweep decks and stencil specs (the two
//     workload grammars), each solved exactly as deck_runner would;
//   * admission control that rejects malformed or over-budget inputs
//     with a typed AdmissionError *before* anything is scheduled,
//     reusing the static linters (analysis::lint_deck / lint_stencil)
//     so admission and runtime can never disagree about what is legal;
//   * N tenant workers solving concurrently, sharing one host
//     util::ThreadPool (the functional kernels) and one SpeAllocator
//     (the simulated chip: runs claim SPEs worst-fit and yield them
//     under pressure at batch boundaries);
//   * a PlanCache keyed by deck fingerprint, so resubmitted decks skip
//     the quadrature build and the trace-scheduled kernel calibration
//     (byte-identical reports either way, pinned by tests).
//
// Host concurrency only ever decides *which SPEs* a tenant holds and
// *when in host time* work runs -- each tenant's simulated clocks
// advance only with its own workload, and the physics is bitwise
// independent of tenancy (pinned by tests).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/report.h"
#include "core/spe_allocator.h"
#include "server/plan_cache.h"
#include "sweep/deck.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "workloads/stencil/spec.h"

namespace cellsweep::core {

enum class JobKind : std::uint8_t { kSweep, kStencil };
const char* job_kind_name(JobKind k);

/// Thrown by submit() when a job is rejected at admission; the typed
/// reason lets clients (and tests) react to the cause instead of
/// pattern-matching message text.
class AdmissionError : public std::runtime_error {
 public:
  enum class Reason : std::uint8_t {
    kParse,       ///< deck / spec text does not parse
    kLint,        ///< static linter found errors
    kLsBudget,    ///< simulated-LS footprint exceeds the server budget
    kGridBudget,  ///< grid cells exceed the server budget
    kQueueFull,   ///< queue_limit pending jobs already
  };

  AdmissionError(Reason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  Reason reason() const noexcept { return reason_; }

 private:
  Reason reason_;
};

const char* admission_reason_name(AdmissionError::Reason r);

struct ServerConfig {
  /// Concurrent tenant workers (clamped to >= 1). Each runs one solve
  /// at a time against the shared chip.
  int tenants = 2;
  /// Machine switches every job runs under (the Figure 5 ladder).
  OptimizationStage stage = OptimizationStage::kSpeLsPoke;
  /// Pending jobs admitted before submit() rejects with kQueueFull.
  std::size_t queue_limit = 64;
  /// Admission budget on the per-SPE simulated-LS footprint (resident
  /// regions + buffers x staging buffer) in bytes. 0 = no extra budget
  /// beyond the linter's 256 KB capacity check.
  std::size_t ls_budget_bytes = 0;
  /// Admission budget on grid cells; 0 = unlimited.
  long long grid_cell_budget = 0;
  /// Width of the shared host pool (functional kernels; clamped >= 1).
  /// Purely host-side: results are bitwise identical for any value.
  int host_threads = 1;
  /// Fewest SPEs a tenant may be squeezed to under pressure.
  int min_spes = 1;
};

struct JobRequest {
  JobKind kind = JobKind::kSweep;
  /// Label in results; defaults to "job-<id>".
  std::string name;
  /// Deck (sweep) or spec (stencil) source text.
  std::string text;
  RunMode mode = RunMode::kTraceDriven;
};

struct JobResult {
  int id = 0;
  std::string name;
  JobKind kind = JobKind::kSweep;
  /// False: the solve itself failed (admission failures never get
  /// here -- submit() throws instead); `error` has the story.
  bool ok = false;
  std::string error;
  /// The machine-side report, exactly what a solo deck_runner run of
  /// the same input produces (a stencil job's StencilReport::run).
  RunReport report;
  // Stencil functional results (kFunctional stencil jobs only).
  double checksum = 0;
  double residual = 0;
  /// This job reused a cached plan (quadrature + kernel calibration).
  bool plan_cache_hit = false;
};

class SolveServer {
 public:
  struct Stats {
    std::uint64_t submitted = 0;  ///< admitted into the queue
    std::uint64_t completed = 0;  ///< finished ok
    std::uint64_t failed = 0;     ///< finished with an error
    std::uint64_t rejected = 0;   ///< refused at admission
  };

  explicit SolveServer(const ServerConfig& cfg = {});
  /// Drains the queue (pending jobs still run) and joins the workers.
  ~SolveServer();

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Admission-checks @p req (parse, lint, budgets, queue depth) and
  /// enqueues it. Returns the job id; throws AdmissionError on
  /// rejection -- nothing rejected ever reaches a worker.
  int submit(const JobRequest& req) EXCLUDES(mu_);

  /// Blocks until job @p id completes; throws std::invalid_argument
  /// for ids submit() never returned.
  JobResult wait(int id) EXCLUDES(mu_);

  /// Blocks until every submitted job has completed; returns all
  /// results in submission order.
  std::vector<JobResult> drain() EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);
  PlanCache::Stats plan_cache_stats() const { return cache_.stats(); }
  SpeAllocator::Stats allocator_stats() const { return alloc_.stats(); }
  const ServerConfig& config() const noexcept { return cfg_; }

 private:
  struct Job {
    int id = 0;
    JobRequest req;
    // Parsed at admission; exactly one is set.
    std::optional<sweep::Deck> deck;
    std::shared_ptr<const stencil::StencilSpec> spec;
  };

  /// Parse + lint + budget checks; fills job.deck / job.spec. Throws
  /// AdmissionError. Runs entirely outside mu_: admission work never
  /// blocks the queue.
  void admit(Job& job) const EXCLUDES(mu_);
  void worker_loop() EXCLUDES(mu_);
  /// Runs one job to completion. mu_ is never held here: a solve may
  /// take seconds and claims SPEs / the host pool on its own locks.
  JobResult run_job(Job& job) EXCLUDES(mu_);
  JobResult run_sweep(Job& job);
  JobResult run_stencil(Job& job);
  /// The cached plan for @p deck (building + inserting on miss).
  std::shared_ptr<const CachedPlan> plan_for_sweep(
      const sweep::Deck& deck, const CellSweepConfig& cfg,
      std::uint64_t key, bool& hit);

  ServerConfig cfg_;
  CellSweepConfig base_;  ///< from_stage(cfg_.stage)
  util::ThreadPool pool_;
  SpeAllocator alloc_;
  PlanCache cache_;

  /// Guards the job queue, the result map and the server stats -- the
  /// only state tenant workers and clients share directly. Leaf lock:
  /// nothing else is ever acquired while it is held (jobs run outside
  /// it), so it cannot participate in a deadlock cycle.
  mutable util::Mutex mu_{util::lockrank::kSolveServer, "SolveServer::mu_"};
  util::CondVar cv_queue_;  ///< workers wait on mu_ for jobs
  util::CondVar cv_done_;   ///< clients wait on mu_ for results
  std::deque<Job> queue_ GUARDED_BY(mu_);
  std::map<int, JobResult> done_ GUARDED_BY(mu_);
  int next_id_ GUARDED_BY(mu_) = 1;
  bool stopping_ GUARDED_BY(mu_) = false;
  Stats stats_ GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

}  // namespace cellsweep::core
