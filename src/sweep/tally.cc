#include "sweep/tally.h"

#include <limits>
#include <stdexcept>

namespace cellsweep::sweep {

void TallySet::add_box(const std::string& name, int i0, int i1, int j0,
                       int j1, int k0, int k1) {
  if (i0 >= i1 || j0 >= j1 || k0 >= k1)
    throw std::invalid_argument("TallySet: empty box '" + name + "'");
  Region r;
  r.name = name;
  r.i0 = i0; r.i1 = i1;
  r.j0 = j0; r.j1 = j1;
  r.k0 = k0; r.k1 = k1;
  regions_.push_back(std::move(r));
}

void TallySet::add_material(const std::string& name, int material_index) {
  Region r;
  r.name = name;
  r.by_material = true;
  r.material = material_index;
  regions_.push_back(std::move(r));
}

template <typename Real>
std::vector<RegionTally> TallySet::compute(
    const Problem& problem, const MomentField<Real>& flux) const {
  const Grid& g = problem.grid();
  const double dv = g.cell_volume();
  std::vector<RegionTally> out;
  out.reserve(regions_.size());

  for (const Region& r : regions_) {
    RegionTally t;
    t.name = r.name;
    t.peak_flux = -std::numeric_limits<double>::infinity();
    t.min_flux = std::numeric_limits<double>::infinity();
    const int i0 = r.by_material ? 0 : r.i0;
    const int i1 = r.by_material ? g.it : r.i1;
    const int j0 = r.by_material ? 0 : r.j0;
    const int j1 = r.by_material ? g.jt : r.j1;
    const int k0 = r.by_material ? 0 : r.k0;
    const int k1 = r.by_material ? g.kt : r.k1;
    if (!r.by_material &&
        (i1 > g.it || j1 > g.jt || k1 > g.kt))
      throw std::out_of_range("TallySet: box '" + r.name +
                              "' outside the grid");

    double flux_sum = 0;
    for (int k = k0; k < k1; ++k)
      for (int j = j0; j < j1; ++j)
        for (int i = i0; i < i1; ++i) {
          if (r.by_material && problem.material_index(i, j, k) != r.material)
            continue;
          const Material& mat = problem.material_of(i, j, k);
          const double phi = static_cast<double>(flux.at(0, k, j, i));
          ++t.cells;
          flux_sum += phi;
          t.peak_flux = std::max(t.peak_flux, phi);
          t.min_flux = std::min(t.min_flux, phi);
          t.absorption_rate += (mat.sigma_t - mat.sigma_s[0]) * phi * dv;
          t.scattering_rate += mat.sigma_s[0] * phi * dv;
          t.source_rate += mat.q_ext * dv;
        }
    t.volume = t.cells * dv;
    t.mean_flux = t.cells ? flux_sum / t.cells : 0.0;
    if (t.cells == 0) {
      t.peak_flux = 0;
      t.min_flux = 0;
    }
    out.push_back(std::move(t));
  }
  return out;
}

template std::vector<RegionTally> TallySet::compute<double>(
    const Problem&, const MomentField<double>&) const;
template std::vector<RegionTally> TallySet::compute<float>(
    const Problem&, const MomentField<float>&) const;

}  // namespace cellsweep::sweep
