// Stencil spec grammar: the input-file format of the even/odd red-black
// stencil workload (workloads/stencil), playing the role the Sweep3D
// deck (sweep/deck.h) plays for the transport workload. Same line
// discipline as the deck parser: '#' starts a comment, several
// key-value pairs may share a line, unknown keys are hard errors with
// the offending line number.
//
//   # 32-cubed heat problem, 8-cubed SPE blocks
//   nx 32  ny 32  nz 32
//   bx 8   by 8   bz 8
//   iterations 4
//   h 0.03125  source 1.0
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

namespace cellsweep::stencil {

/// Thrown on malformed or out-of-range specs.
class StencilError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One red-black stencil problem: a block-partitioned 3D grid solved by
/// Gauss-Seidel half-sweeps (one per color). Blocks are the SPE chunk
/// unit: each block's working set streams through the local store.
struct StencilSpec {
  int nx = 32, ny = 32, nz = 32;  ///< grid cells per axis
  int bx = 8, by = 8, bz = 8;     ///< block extents (must divide the grid)
  int iterations = 4;             ///< full sweeps (2 half-sweeps each)
  double h = 1.0;                 ///< mesh spacing
  double source = 1.0;            ///< uniform source density f
  std::string origin = "<spec>";  ///< file path (diagnostics)

  long long cells() const noexcept {
    return static_cast<long long>(nx) * ny * nz;
  }
  int blocks_x() const noexcept { return nx / bx; }
  int blocks_y() const noexcept { return ny / by; }
  int blocks_z() const noexcept { return nz / bz; }
  int blocks() const noexcept {
    return blocks_x() * blocks_y() * blocks_z();
  }

  /// Range and divisibility checks; throws StencilError on violation.
  void validate() const;
};

/// Parses a spec from a stream / string / file. All three validate.
StencilSpec parse_spec(std::istream& in);
StencilSpec parse_spec_string(const std::string& text);
StencilSpec load_spec(const std::string& path);

}  // namespace cellsweep::stencil
