// Tests for the static deck linter: a clean deck lints clean, and
// decks that would blow the local-store budget, the tag-group space or
// the CBEA DMA rules are rejected before any simulation runs.
#include <gtest/gtest.h>

#include <string>

#include "analysis/lint.h"
#include "core/config.h"
#include "sweep/deck.h"

namespace cellsweep {
namespace {

const char* kGoodDeck = R"(
it 32  jt 32  kt 32
dx 0.125  dy 0.125  dz 0.125
mk 8  mmi 3
sn 6  moments 6
iterations 4  fixup_from 2
material m 1.0 0.5 0.2 0.05 source 1.0
)";

sweep::Deck deck_with(const std::string& extra) {
  return sweep::parse_deck_string(std::string(kGoodDeck) + extra);
}

core::CellSweepConfig final_stage() {
  return core::CellSweepConfig::from_stage(
      core::OptimizationStage::kSpeLsPoke);
}

bool has_rule(const analysis::Diagnostics& diags, const std::string& rule) {
  for (const analysis::Diagnostic& d : diags.entries())
    if (d.rule == rule) return true;
  return false;
}

TEST(Lint, CleanDeckLintsClean) {
  const sweep::Deck deck = deck_with("");
  const analysis::Diagnostics diags = analysis::lint_deck(deck, final_stage());
  EXPECT_TRUE(diags.empty()) << diags.summary();
}

TEST(Lint, EveryLadderStageAcceptsTheBenchmarkDeck) {
  const sweep::Deck deck = sweep::parse_deck_string(R"(
it 50  jt 50  kt 50
dx 0.04  dy 0.04  dz 0.04
mk 10  mmi 3
sn 6  moments 6
iterations 12  fixup_from 10
material benchmark 1.0 0.5 0.2 0.05 source 1.0
)");
  for (const core::OptimizationStage stage : {
           core::OptimizationStage::kPpeXlc,
           core::OptimizationStage::kSpeInitial,
           core::OptimizationStage::kSpeBuffered,
           core::OptimizationStage::kSpeLsPoke,
           core::OptimizationStage::kFutureBigDma,
           core::OptimizationStage::kFutureDistributed,
       }) {
    core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
    cfg.sweep = deck.sweep;
    const analysis::Diagnostics diags = analysis::lint_deck(deck, cfg);
    EXPECT_TRUE(diags.empty())
        << core::stage_name(stage) << ":\n"
        << diags.summary();
  }
}

TEST(Lint, OversizedChunkBlowsLsBudget) {
  // A 4000-cell I axis makes one chunk's staging buffer alone exceed
  // 256 KB -- the paper's Section 2 budgeting failure mode. The
  // diagnostic must name the byte counts and the buffer count.
  const sweep::Deck deck = sweep::parse_deck_string(R"(
it 4000  jt 8  kt 8
dx 0.04  dy 0.04  dz 0.04
mk 8  mmi 3
sn 6  moments 6
iterations 2  fixup_from 1
material m 1.0 0.5 0.2 0.05 source 1.0
)");
  const analysis::Diagnostics diags = analysis::lint_deck(deck, final_stage());
  ASSERT_TRUE(has_rule(diags, "ls-budget")) << diags.summary();
  EXPECT_TRUE(diags.has_errors());
  for (const analysis::Diagnostic& d : diags.entries()) {
    if (d.rule != "ls-budget") continue;
    EXPECT_NE(d.message.find("staging buffer"), std::string::npos);
    EXPECT_NE(d.message.find("local store"), std::string::npos);
    EXPECT_NE(d.where.find("it 4000"), std::string::npos);
  }
}

TEST(Lint, BadBlockingFactorRejected) {
  // MK must divide KT; the linter reuses the sweep validator. The deck
  // parser catches this for files, but a programmatically built deck
  // (or a future parser change) must still fail lint, not simulation.
  sweep::Deck deck = deck_with("");
  deck.sweep.mk = 7;  // kt = 32
  const analysis::Diagnostics diags = analysis::lint_deck(deck, final_stage());
  ASSERT_TRUE(has_rule(diags, "blocking")) << diags.summary();
  for (const analysis::Diagnostic& d : diags.entries())
    if (d.rule == "blocking")
      EXPECT_NE(d.where.find("mk 7"), std::string::npos) << d.where;
}

TEST(Lint, TagBudgetBoundsBufferCount) {
  core::CellSweepConfig cfg = final_stage();
  cfg.buffers = 20;  // needs 40 tag groups; the CBEA has 32
  const analysis::Diagnostics diags =
      analysis::lint_deck(deck_with(""), cfg);
  EXPECT_TRUE(has_rule(diags, "tag-budget")) << diags.summary();
}

TEST(Lint, GranularityMustBeQuadwordMultiple) {
  core::CellSweepConfig cfg = final_stage();
  cfg.dma_granularity = 520;  // not a multiple of 16
  const analysis::Diagnostics diags =
      analysis::lint_deck(deck_with(""), cfg);
  EXPECT_TRUE(has_rule(diags, "dma-granularity")) << diags.summary();
}

TEST(Lint, LoadedDeckCarriesItsSource) {
  // load_deck stamps the path; string decks stay "<string>". The
  // deck_runner lint path prefixes findings with it.
  EXPECT_EQ(deck_with("").source, "<string>");
}

}  // namespace
}  // namespace cellsweep
