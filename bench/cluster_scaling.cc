// Extension bench: multi-chip wavefront scaling.
//
// The paper keeps the MPI level intact precisely so clusters of Cell
// blades run unchanged, and its references [3,5] model how the
// pipelined wavefront scales. This bench composes the per-chip Cell
// simulation (one tile) with that analytic model: scaling curve over
// process grids, and the MK/MMI granularity trade-off that motivates
// "MMI is 1 or 3" on large machines.
#include "bench/bench_common.h"

#include "core/cluster.h"
#include "core/workload.h"
#include "perfmodel/wavefront.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Extension: cluster-of-Cells wavefront scaling");

  // Global problem: 100^3 over the process grid; every rank runs a
  // full per-chip machine model, coupled by timed boundary messages,
  // and the analytic model of the paper's refs [3,5] sits beside it.
  const int global_n = opt.cube_or(100);
  bench::BenchJson json("cluster_scaling", global_n);
  const sweep::Grid global = sweep::Grid::cube(global_n, 2.0);
  util::TextTable table({"grid", "chips", "tile", "sim time [s]",
                         "wavefront eff", "speedup", "analytic [s]"});

  double serial_time = 0;
  for (auto [px, py] : {std::pair{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4},
                        {5, 4}, {5, 5}}) {
    core::ClusterConfig cc;
    cc.px = px;
    cc.py = py;
    cc.chip =
        core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
    cc.chip.sweep.mk = 10;
    cc.chip.sweep.mmi = 3;
    cc.link_bandwidth = 2e9;  // blade interconnect, ~2 GB/s
    cc.link_latency_s = 8e-6;

    const core::ClusterReport sim_r = core::simulate_cluster(global, cc);
    if (px * py == 1) serial_time = sim_r.seconds;
    {
      // Cluster runs have no single-chip RunReport; record the top-line
      // simulated time so the scaling curve is regression-tracked too.
      core::RunReport rep;
      rep.seconds = sim_r.seconds;
      json.add_run("grid" + std::to_string(px) + "x" + std::to_string(py),
                   rep);
    }

    perf::WavefrontParams wp;
    wp.px = px;
    wp.py = py;
    wp.blocks_per_octant =
        (global_n / cc.chip.sweep.mk) * (6 / cc.chip.sweep.mmi);
    wp.tile_time_s = sim_r.tile_seconds;
    wp.block_comm_bytes = 8.0 * (cc.chip.sweep.mmi * cc.chip.sweep.mk *
                                 (global_n / px + global_n / py));
    wp.link_bandwidth = cc.link_bandwidth;
    wp.link_latency_s = cc.link_latency_s;
    const perf::WavefrontEstimate e = perf::estimate_wavefront(wp);

    table.add_row({bench::fmt("%.0f", px) + "x" + bench::fmt("%.0f", py),
                   bench::fmt("%.0f", px * py),
                   bench::fmt("%.0f", global_n / px) + "x" +
                       bench::fmt("%.0f", global_n / py) + "x" +
                       bench::fmt("%.0f", global_n),
                   bench::fmt("%.3f", sim_r.seconds),
                   util::format_percent(sim_r.wavefront_efficiency),
                   util::format_speedup(serial_time / sim_r.seconds),
                   bench::fmt("%.3f", e.total_s)});
  }
  table.print(std::cout);
  std::cout << "\nSimulated and analytic cluster times agree on the scaling\n"
               "shape; the simulation resolves per-diagonal effects the\n"
               "analytic pipeline-fill formula folds into one number.\n";

  // Granularity trade-off at 8x8: finer blocks (smaller MK*MMI) fill
  // the pipeline sooner but pay more messages.
  std::cout << "\nBlock-granularity trade-off on the 8x8 grid:\n\n";
  util::TextTable sweep_tbl({"blocks/octant", "fill eff", "est. time [s]"});
  for (int b : {5, 10, 20, 40, 80, 200, 400}) {
    perf::WavefrontParams wp;
    wp.px = wp.py = 8;
    wp.blocks_per_octant = b;
    wp.tile_time_s = 0.10;
    wp.block_comm_bytes = 60000.0 / b;
    wp.link_bandwidth = 2e9;
    wp.link_latency_s = 8e-6;
    const perf::WavefrontEstimate e = perf::estimate_wavefront(wp);
    sweep_tbl.add_row({bench::fmt("%.0f", b),
                       util::format_percent(e.fill_efficiency),
                       bench::fmt("%.4f", e.total_s)});
  }
  sweep_tbl.print(std::cout);
  std::cout << "\nAn interior optimum appears: the reason Sweep3D exposes\n"
               "MK and MMI as tunables and the paper runs MMI = 1 or 3.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
