// Compile-fail seed: reading a GUARDED_BY member without its lock.
//
// This translation unit must NOT compile under clang -Wthread-safety
// -Werror=thread-safety; the `compile_fail_guarded_by` test builds it
// and asserts the build breaks (WILL_FAIL). If this file ever starts
// compiling, the thread-safety gate has silently stopped analyzing --
// exactly the regression the test exists to catch.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void bump() {
    // BUG (deliberate): `count_` is GUARDED_BY(mu_), and no lock is
    // held here. Clang: "writing variable 'count_' requires holding
    // mutex 'mu_' exclusively [-Werror,-Wthread-safety-analysis]".
    ++count_;
  }

 private:
  cellsweep::util::Mutex mu_{1, "Counter::mu_"};
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return 0;
}
