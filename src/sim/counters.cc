#include "sim/counters.h"

#include <algorithm>
#include <stdexcept>

namespace cellsweep::sim {

void CounterSet::set(std::string_view counter, double value) {
  for (auto& [name, v] : values_) {
    if (name == counter) {
      v = value;
      return;
    }
  }
  values_.emplace_back(std::string(counter), value);
}

void CounterSet::add(std::string_view counter, double delta) {
  for (auto& [name, v] : values_) {
    if (name == counter) {
      v += delta;
      return;
    }
  }
  values_.emplace_back(std::string(counter), delta);
}

double CounterSet::value(std::string_view counter) const {
  for (const auto& [name, v] : values_)
    if (name == counter) return v;
  return 0.0;
}

bool CounterSet::has(std::string_view counter) const {
  for (const auto& [name, v] : values_)
    if (name == counter) return true;
  return false;
}

CounterSet& CounterSet::child(std::string_view child) {
  for (CounterSet& c : children_)
    if (c.name_ == child) return c;
  children_.emplace_back(CounterSet(std::string(child)));
  return children_.back();
}

const CounterSet* CounterSet::find_child(std::string_view child) const {
  for (const CounterSet& c : children_)
    if (c.name_ == child) return &c;
  return nullptr;
}

CounterSet& CounterSet::add_child(CounterSet set) {
  children_.push_back(std::move(set));
  return children_.back();
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& [name, v] : other.values_) add(name, v);
  for (const CounterSet& c : other.children_) child(c.name_).merge(c);
}

TimeSlicedProfiler::TimeSlicedProfiler(std::size_t max_windows,
                                       Tick initial_window)
    : max_windows_(max_windows), window_(initial_window) {
  if (max_windows_ < 2)
    throw std::invalid_argument("TimeSlicedProfiler: need >= 2 windows");
  if (window_ < 1)
    throw std::invalid_argument("TimeSlicedProfiler: window must be >= 1 tick");
}

void TimeSlicedProfiler::forward_to(TraceSink* downstream) {
  downstream_ = downstream;
  downstream_tracks_.clear();
  for (const std::string& name : tracks_)
    downstream_tracks_.push_back(downstream_ ? downstream_->track(name) : 0);
}

int TimeSlicedProfiler::track(const std::string& name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i)
    if (tracks_[i] == name) return static_cast<int>(i);
  tracks_.push_back(name);
  downstream_tracks_.push_back(downstream_ ? downstream_->track(name) : 0);
  return static_cast<int>(tracks_.size() - 1);
}

void TimeSlicedProfiler::fold() {
  for (Series& s : series_) {
    const std::size_t n = s.bins.size();
    for (std::size_t i = 0; i < (n + 1) / 2; ++i) {
      const double hi = 2 * i + 1 < n ? s.bins[2 * i + 1] : 0.0;
      s.bins[i] = s.bins[2 * i] + hi;
    }
    s.bins.resize((n + 1) / 2);
  }
  window_ *= 2;
}

TimeSlicedProfiler::Series& TimeSlicedProfiler::series_for(
    int track, const char* category) {
  for (Series& s : series_)
    if (s.track == track && s.category == category) return s;
  series_.push_back(Series{track, category, {}});
  return series_.back();
}

void TimeSlicedProfiler::span(int track, const char* name,
                              const char* category, Tick start, Tick end) {
  if (downstream_)
    downstream_->span(downstream_tracks_[static_cast<std::size_t>(track)],
                      name, category, start, end);
  if (end <= start) return;
  end_ = std::max(end_, end);
  // Keep the whole span inside the window budget before distributing,
  // so a single distribution never touches more than max_windows bins.
  while (end > window_ * static_cast<Tick>(max_windows_)) fold();

  Series& s = series_for(track, category);
  const std::size_t first = static_cast<std::size_t>(start / window_);
  const std::size_t last = static_cast<std::size_t>((end - 1) / window_);
  if (s.bins.size() <= last) s.bins.resize(last + 1, 0.0);
  for (std::size_t w = first; w <= last; ++w) {
    const Tick w_start = static_cast<Tick>(w) * window_;
    const Tick w_end = w_start + window_;
    const Tick overlap = std::min(end, w_end) - std::max(start, w_start);
    s.bins[w] += static_cast<double>(overlap);
  }
}

void TimeSlicedProfiler::instant(int track, const char* name,
                                 const char* category, Tick at) {
  end_ = std::max(end_, at);
  if (downstream_)
    downstream_->instant(downstream_tracks_[static_cast<std::size_t>(track)],
                         name, category, at);
}

void TimeSlicedProfiler::counter(int track, const char* name, Tick at,
                                 double value) {
  end_ = std::max(end_, at);
  if (downstream_)
    downstream_->counter(downstream_tracks_[static_cast<std::size_t>(track)],
                         name, at, value);
}

Profile TimeSlicedProfiler::profile() const {
  Profile p;
  p.window_ticks = window_;
  p.end_ticks = end_;
  const std::size_t used = p.window_count();
  p.series.reserve(series_.size());
  for (const Series& s : series_) {
    ProfileSeries out;
    out.track = tracks_[static_cast<std::size_t>(s.track)];
    out.category = s.category;
    out.busy_ticks = s.bins;
    out.busy_ticks.resize(used, 0.0);
    p.series.push_back(std::move(out));
  }
  return p;
}

void TimeSlicedProfiler::emit_counter_events(TraceSink& out) const {
  const Profile p = profile();
  const double width = static_cast<double>(p.window_ticks);
  for (const ProfileSeries& s : p.series) {
    const int t = out.track(s.track);
    // The counter name must outlive the sink; category strings are the
    // engine's string literals, so hand those straight through.
    const char* name = nullptr;
    for (const Series& raw : series_)
      if (tracks_[static_cast<std::size_t>(raw.track)] == s.track &&
          raw.category == s.category)
        name = raw.category.c_str();
    if (!name) continue;
    for (std::size_t w = 0; w < s.busy_ticks.size(); ++w)
      out.counter(t, name, static_cast<Tick>(w) * p.window_ticks,
                  100.0 * s.busy_ticks[w] / width);
  }
}

}  // namespace cellsweep::sim
