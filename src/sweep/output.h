// Field output: legacy-VTK structured-points files (loadable in
// ParaView/VisIt) and CSV line extractions, for the scalar flux and the
// material map.
#pragma once

#include <iosfwd>
#include <string>

#include "sweep/field.h"
#include "sweep/problem.h"

namespace cellsweep::sweep {

/// Writes the scalar flux (moment 0) and the material index as cell
/// data in legacy VTK STRUCTURED_POINTS format.
template <typename Real>
void write_vtk(std::ostream& os, const Problem& problem,
               const MomentField<Real>& flux,
               const std::string& title = "cellsweep flux");

/// Convenience: writes to @p path; throws std::runtime_error on I/O
/// failure.
template <typename Real>
void write_vtk_file(const std::string& path, const Problem& problem,
                    const MomentField<Real>& flux,
                    const std::string& title = "cellsweep flux");

/// Writes a CSV of the scalar flux along the I axis at fixed (j, k):
/// header "i,x,material,flux" then one row per cell.
template <typename Real>
void write_line_csv(std::ostream& os, const Problem& problem,
                    const MomentField<Real>& flux, int j, int k);

}  // namespace cellsweep::sweep
