// Architectural constants of the Cell Broadband Engine machine model.
//
// The "hard" numbers (clock, bandwidths, local-store size, DMA command
// rules, DP issue restrictions) are the ones the paper itself quotes in
// Section 2 from the CBEA specification; they are never tuned per
// experiment. The "soft" numbers (per-command overheads, sync-protocol
// latencies, PPE scalar cost) are microarchitectural details the paper
// only describes qualitatively; DESIGN.md section 4 documents how they
// were calibrated once, globally, against the Section 5 measurements.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace cellsweep::cell {

/// Full parameter set for one simulated Cell BE chip.
struct CellSpec {
  // --- Hard constants from the CBEA / paper Section 2 ---------------------
  double clock_hz = 3.2e9;             ///< SPU & PPE clock
  int num_spes = 8;                    ///< SPEs per chip
  std::size_t local_store_bytes = 256 * 1024;  ///< LS per SPE
  double eib_bytes_per_s = 204.8e9;    ///< EIB aggregate peak
  double mic_bytes_per_s = 25.6e9;     ///< main-memory peak bandwidth
  int memory_banks = 16;               ///< interleaved main-memory banks
  int mfc_queue_depth = 16;            ///< outstanding DMA commands per MFC
  std::size_t dma_max_bytes = 16 * 1024;  ///< max single DMA transfer
  int dma_list_max_elements = 2048;    ///< max elements per DMA-list command
  std::size_t dma_align_sweet_spot = 128;  ///< alignment for peak DMA rate

  /// Double precision is only partially pipelined: one 2-way DP vector
  /// op may issue every 7 cycles (paper Section 5.1). Peak DP rate is
  /// therefore 8 SPEs x 4 flops / 7 cycles = 14.63 Gflops/s.
  int dp_issue_block_cycles = 7;

  // --- Soft constants (global calibration, see DESIGN.md) -----------------
  /// SPU-side cost to construct & enqueue one DMA command (channel
  /// writes, tag management). Individual per-row DMAs pay this per row;
  /// a DMA list pays it once per command.
  double dma_issue_cycles = 48;
  /// SPU-side cost per DMA-list element (building the LS-resident list
  /// of address/length pairs).
  double dma_list_build_cycles = 4;
  /// Memory-side startup cost per DMA command (command scheduling, DRAM
  /// row activation) before the payload streams.
  sim::Tick dma_cmd_overhead = sim::ticks_from_seconds(4e-9);
  /// DRAM burst-turnaround gap charged per transfer element, expressed
  /// as equivalent bytes of port occupancy. This is why raising the
  /// communication granularity from 512-byte rows helps (Fig. 10's
  /// first projection): 512 B elements waste gap/(512+gap) of the port.
  double dram_gap_bytes = 96.0;
  /// Memory-side processing cost per DMA-list element beyond the first;
  /// far cheaper than a full command, which is why converting 512-byte
  /// individual DMAs into lists helps (Fig. 5, 1.68 -> 1.48 s step).
  sim::Tick dma_list_element_overhead = sim::ticks_from_seconds(2e-9);
  /// PPE-side work per dispatched chunk beyond the raw message: the
  /// PPE polls eight completion words, recomputes the four I-line
  /// descriptors (dozens of flattened-array addresses each) and writes
  /// them out. Occupies the centralized dispatcher; this is the PPE
  /// bottleneck the paper identifies and Fig. 10 removes with
  /// distributed self-scheduling.
  sim::Tick ppe_dispatch_overhead = sim::ticks_from_seconds(1100e-9);
  /// PPE->SPE mailbox message latency (MMIO write through the EIB).
  sim::Tick mailbox_latency = sim::ticks_from_seconds(700e-9);
  /// Direct PPE poke into an SPE local store (the optimized sync
  /// protocol in Section 5: "DMAs and direct local store memory
  /// poking"). Cheaper than the mailbox MMIO round trip.
  sim::Tick ls_poke_latency = sim::ticks_from_seconds(300e-9);
  /// SPE-side atomic-unit operation (getllar/putllc pair), used by the
  /// distributed task-distribution variant of Fig. 10.
  sim::Tick atomic_op_latency = sim::ticks_from_seconds(110e-9);
  /// Under-128-byte or misaligned transfers waste DRAM burst capacity;
  /// this floor is the worst-case efficiency for tiny transfers.
  double dma_min_efficiency = 0.30;
  // --- Fault handling (only exercised when a sim::FaultPlan is armed) ----
  /// SPU-side cost to notice a transiently failed transfer: the tag-
  /// status poll that comes back with the fail bit plus the channel
  /// work to re-validate the command before resubmission.
  sim::Tick dma_fault_detect = sim::ticks_from_seconds(1000e-9);
  /// Base of the exponential backoff between DMA retry attempts:
  /// attempt k waits base * 2^k cycles before resubmitting.
  double dma_retry_backoff_cycles = 256;
  /// Extra wait burned when a tag-status wait misses the completion
  /// event and only catches it on the next poll period.
  sim::Tick tag_timeout_penalty = sim::ticks_from_seconds(2000e-9);
  /// PPE-side resend timer for a dropped dispatch message (mailbox
  /// write or LS poke that never landed).
  sim::Tick mailbox_drop_timeout = sim::ticks_from_seconds(5000e-9);
  /// PPE watchdog period for declaring an unresponsive SPE dead and
  /// re-dispatching its work to the survivors.
  sim::Tick spe_fail_detect = sim::ticks_from_seconds(20000e-9);

  /// Banks a chunk's row stream touches when arrays are allocated
  /// without staggering offsets: every 512-byte row starts at the same
  /// line offset, so concurrent SPEs hammer the same bank group. The
  /// "offsets to the array allocation" optimization spreads them over
  /// all 16 banks.
  int banks_without_offsets = 11;

  // --- Derived helpers -----------------------------------------------------
  sim::Tick cycle() const { return sim::ticks_per_cycle(clock_hz); }
  sim::Tick cycles(double n) const {
    return static_cast<sim::Tick>(n * static_cast<double>(cycle()) + 0.5);
  }
  /// Theoretical DP peak for the whole chip (flops/s).
  double dp_peak_flops() const {
    return clock_hz * 4.0 / static_cast<double>(dp_issue_block_cycles) *
           num_spes;
  }
  /// Theoretical SP peak for the whole chip (flops/s).
  double sp_peak_flops() const { return clock_hz * 8.0 * num_spes; }
};

/// A Cell revision with a fully pipelined double-precision unit -- the
/// architectural improvement the paper's Section 6 evaluates
/// prospectively (and which later shipped as the PowerXCell 8i).
inline CellSpec fully_pipelined_dp_spec() {
  CellSpec s;
  s.dp_issue_block_cycles = 1;
  return s;
}

}  // namespace cellsweep::cell
