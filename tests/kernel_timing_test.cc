// Tests for the trace-driven kernel cost model: the component behind
// the paper's Section 5.1 cycle counts.
#include <gtest/gtest.h>

#include "core/kernel_timing.h"

namespace cellsweep::core {
namespace {

class KernelTimingTest : public ::testing::Test {
 protected:
  cell::CellSpec spec_;
  KernelCostModel model_{spec_};
};

TEST_F(KernelTimingTest, SimdTraceHasExpectedComposition) {
  spu::Trace trace;
  model_.schedule_simd_chunk(Precision::kDouble, 4, 50, 6, false, &trace);
  EXPECT_GT(trace.count(spu::Op::kFmaDouble), 0u);
  EXPECT_GT(trace.count(spu::Op::kLoad), 0u);
  EXPECT_GT(trace.count(spu::Op::kStore), 0u);
  EXPECT_GT(trace.count(spu::Op::kShuffle), 0u);
  EXPECT_EQ(trace.count(spu::Op::kFmaSingle), 0u);  // DP chunk
  EXPECT_GT(trace.flops, 0u);
}

TEST_F(KernelTimingTest, Section51CycleShape) {
  // Paper: the DP kernel executes 216 flops in 590 cycles per
  // four-cell step with fixups off, 1690 with fixups on, and roughly
  // 5% of cycles dual-issue. Our trace-driven reproduction must land
  // in the same regime (documented in EXPERIMENTS.md).
  const auto off =
      model_.schedule_simd_chunk(Precision::kDouble, 4, 50, 6, false);
  const double cyc_per_step = static_cast<double>(off.cycles) / 50.0;
  const double flops_per_step = static_cast<double>(off.flops) / 50.0;
  EXPECT_GT(cyc_per_step, 400.0);
  EXPECT_LT(cyc_per_step, 800.0);
  EXPECT_GT(flops_per_step, 140.0);
  EXPECT_LT(flops_per_step, 260.0);

  const auto on =
      model_.schedule_simd_chunk(Precision::kDouble, 4, 50, 6, true);
  const double on_per_step = static_cast<double>(on.cycles) / 50.0;
  EXPECT_GT(on_per_step, 2.0 * cyc_per_step);   // fixups are expensive
  EXPECT_LT(on_per_step, 4.0 * cyc_per_step);
}

TEST_F(KernelTimingTest, DpEfficiencyNearPaper) {
  // 64% of the DP peak (4 flops / 7 cycles) with fixups off.
  const auto off =
      model_.schedule_simd_chunk(Precision::kDouble, 4, 50, 6, false);
  const double peak = 4.0 / 7.0;
  const double eff = off.flops_per_cycle() / peak;
  EXPECT_GT(eff, 0.40);
  EXPECT_LT(eff, 0.80);
}

TEST_F(KernelTimingTest, SinglePrecisionMuchFaster) {
  const auto dp =
      model_.schedule_simd_chunk(Precision::kDouble, 4, 50, 6, false);
  const auto sp =
      model_.schedule_simd_chunk(Precision::kSingle, 4, 50, 6, false);
  EXPECT_LT(sp.cycles * 3, dp.cycles);  // SP is fully pipelined
}

TEST_F(KernelTimingTest, ScalarSlowerThanSimd) {
  const auto simd =
      model_.schedule_simd_chunk(Precision::kDouble, 4, 50, 6, false);
  const auto scalar = model_.schedule_scalar_chunk(Precision::kDouble, 4, 50,
                                                   6, false, true);
  EXPECT_GT(scalar.cycles, 2 * simd.cycles);
}

TEST_F(KernelTimingTest, GotoEliminationHelpsScalar) {
  const auto with_gotos = model_.schedule_scalar_chunk(
      Precision::kDouble, 4, 50, 6, false, /*gotos_eliminated=*/false);
  const auto without = model_.schedule_scalar_chunk(
      Precision::kDouble, 4, 50, 6, false, /*gotos_eliminated=*/true);
  EXPECT_GT(with_gotos.cycles, without.cycles);
  // The difference is the branch-flush penalty: order 100 cycles/cell.
  const double per_cell =
      static_cast<double>(with_gotos.cycles - without.cycles) / 200.0;
  EXPECT_GT(per_cell, 50.0);
  EXPECT_LT(per_cell, 300.0);
}

TEST_F(KernelTimingTest, FullyPipelinedDpCutsCycles) {
  KernelCostModel fast(cell::fully_pipelined_dp_spec());
  const auto slow_r =
      model_.schedule_simd_chunk(Precision::kDouble, 4, 50, 6, false);
  const auto fast_r =
      fast.schedule_simd_chunk(Precision::kDouble, 4, 50, 6, false);
  EXPECT_LT(fast_r.cycles, slow_r.cycles * 0.7);
}

TEST_F(KernelTimingTest, CostCacheConsistent) {
  const ChunkCost& a = model_.chunk_cost(sweep::KernelKind::kSimd,
                                         Precision::kDouble, 4, 50, 6, false,
                                         true);
  const ChunkCost& b = model_.chunk_cost(sweep::KernelKind::kSimd,
                                         Precision::kDouble, 4, 50, 6, false,
                                         true);
  EXPECT_EQ(&a, &b);  // cached entry reused
  EXPECT_GT(a.cycles, 0.0);
  EXPECT_GT(a.flops, 0u);
}

TEST_F(KernelTimingTest, CyclesScaleWithLines) {
  const ChunkCost& one = model_.chunk_cost(
      sweep::KernelKind::kSimd, Precision::kDouble, 1, 50, 6, false, true);
  const ChunkCost& four = model_.chunk_cost(
      sweep::KernelKind::kSimd, Precision::kDouble, 4, 50, 6, false, true);
  // A one-line bundle still executes full-width vector ops (inactive
  // lanes carry dummies), so flops scale sublinearly with lines...
  EXPECT_GT(four.flops, one.flops);
  EXPECT_LE(four.flops, 4 * one.flops);
  // ...and four bundled lines cost far less than 4x one line (the whole
  // point of the logical-thread vectorization).
  EXPECT_LT(four.cycles, 3.0 * one.cycles);
}

TEST_F(KernelTimingTest, CyclesScaleWithLineLength) {
  const ChunkCost& short_line = model_.chunk_cost(
      sweep::KernelKind::kSimd, Precision::kDouble, 4, 10, 6, false, true);
  const ChunkCost& long_line = model_.chunk_cost(
      sweep::KernelKind::kSimd, Precision::kDouble, 4, 100, 6, false, true);
  EXPECT_NEAR(long_line.cycles / short_line.cycles, 10.0, 3.0);
}

TEST_F(KernelTimingTest, TraceIsDeterministic) {
  const spu::Trace a = record_simd_chunk_trace(Precision::kDouble, 4, 30, 6,
                                               false);
  const spu::Trace b = record_simd_chunk_trace(Precision::kDouble, 4, 30, 6,
                                               false);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.flops, b.flops);
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a.insts[i].op, b.insts[i].op) << i;
}

TEST_F(KernelTimingTest, FixupTraceTriggersEveryCell) {
  // The synthetic fixup-recording data drives every cell down the
  // fixup path, giving the worst-case kernel the paper measured.
  const spu::Trace off = record_simd_chunk_trace(Precision::kDouble, 4, 20, 6,
                                                 false);
  const spu::Trace on = record_simd_chunk_trace(Precision::kDouble, 4, 20, 6,
                                                true);
  EXPECT_GT(on.size(), off.size());
  EXPECT_GT(on.count(spu::Op::kCmpDouble), 0u);
  EXPECT_EQ(off.count(spu::Op::kCmpDouble), 0u);
}

TEST_F(KernelTimingTest, ScalarTraceUsesQuadwordRmw) {
  // Scalar code on the SPU pays load+shuffle+store per scalar store.
  const spu::Trace t = record_scalar_chunk_trace(Precision::kDouble, 1, 10, 6,
                                                 false, true);
  EXPECT_GT(t.count(spu::Op::kShuffle), t.count(spu::Op::kStore));
  EXPECT_GT(t.count(spu::Op::kLoad), t.count(spu::Op::kStore));
}

}  // namespace
}  // namespace cellsweep::core
