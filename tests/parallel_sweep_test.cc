// The host-parallel functional sweep must be bitwise identical to the
// serial one: every I-line of a diagonal writes disjoint flux cells and
// disjoint face entries, and the per-worker kernel counters fold in a
// fixed order, so no floating-point reassociation (or any other
// schedule dependence) is possible. These tests pin that property for
// both kernels, with fixups genuinely firing, plus the invariance of
// the observer stream (and hence of simulated Cell timing).
#include <gtest/gtest.h>

#include <vector>

#include "core/orchestrator.h"
#include "sweep/plan.h"
#include "sweep/problem.h"
#include "sweep/sweeper.h"

namespace cellsweep::sweep {
namespace {

template <typename Real>
struct SolveOutput {
  SolveResult result;
  LeakageTally leakage;
  double absorption = 0;
  std::vector<Real> flux;  // all moments, all cells, in layout order
};

template <typename Real>
SolveOutput<Real> run_solve(const Problem& p, SweepConfig cfg, int threads) {
  cfg.threads = threads;
  SnQuadrature quad(6);
  SweepState<Real> state(p, quad, /*l_max=*/2, kBenchmarkMoments);
  SolveOutput<Real> out;
  out.result = solve_source_iteration(state, cfg);
  out.leakage = state.leakage();
  out.absorption = state.absorption_rate();
  const Grid& g = p.grid();
  for (int n = 0; n < state.nm(); ++n)
    for (int k = 0; k < g.kt; ++k)
      for (int j = 0; j < g.jt; ++j) {
        const Real* row = state.flux().line(n, k, j);
        out.flux.insert(out.flux.end(), row, row + g.it);
      }
  return out;
}

template <typename Real>
void expect_bitwise_equal(const SolveOutput<Real>& serial,
                          const SolveOutput<Real>& parallel) {
  EXPECT_EQ(serial.result.iterations, parallel.result.iterations);
  EXPECT_EQ(serial.result.converged, parallel.result.converged);
  // Exact equality on purpose: the parallel run must be *bitwise*
  // identical, not merely close.
  EXPECT_EQ(serial.result.final_change, parallel.result.final_change);
  EXPECT_EQ(serial.result.totals.lines, parallel.result.totals.lines);
  EXPECT_EQ(serial.result.totals.chunks, parallel.result.totals.chunks);
  EXPECT_EQ(serial.result.totals.cells, parallel.result.totals.cells);
  EXPECT_EQ(serial.result.totals.fixup_cells,
            parallel.result.totals.fixup_cells);
  EXPECT_EQ(serial.leakage.west, parallel.leakage.west);
  EXPECT_EQ(serial.leakage.east, parallel.leakage.east);
  EXPECT_EQ(serial.leakage.north, parallel.leakage.north);
  EXPECT_EQ(serial.leakage.south, parallel.leakage.south);
  EXPECT_EQ(serial.leakage.bottom, parallel.leakage.bottom);
  EXPECT_EQ(serial.leakage.top, parallel.leakage.top);
  EXPECT_EQ(serial.absorption, parallel.absorption);
  ASSERT_EQ(serial.flux.size(), parallel.flux.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial.flux.size(); ++i)
    if (serial.flux[i] != parallel.flux[i]) ++mismatches;
  EXPECT_EQ(mismatches, 0u);
}

SweepConfig fixup_cfg(KernelKind kernel) {
  SweepConfig cfg;
  cfg.kernel = kernel;
  cfg.mk = 5;
  cfg.mmi = 3;
  cfg.max_iterations = 4;
  cfg.fixup_from_iteration = 0;  // fixups on from the first sweep
  return cfg;
}

TEST(ParallelSweep, SimdKernelBitwiseIdenticalWithFixups) {
  // The shield problem's thick absorber makes the fixup path really
  // run (asserted below), so the parallel path covers it too.
  const Problem p = Problem::shield(10);
  const auto serial = run_solve<double>(p, fixup_cfg(KernelKind::kSimd), 1);
  ASSERT_GT(serial.result.totals.fixup_cells, 0u);
  for (int threads : {2, 4, 7}) {
    const auto parallel =
        run_solve<double>(p, fixup_cfg(KernelKind::kSimd), threads);
    expect_bitwise_equal(serial, parallel);
  }
}

TEST(ParallelSweep, ScalarKernelBitwiseIdenticalWithFixups) {
  const Problem p = Problem::shield(10);
  const auto serial = run_solve<double>(p, fixup_cfg(KernelKind::kScalar), 1);
  ASSERT_GT(serial.result.totals.fixup_cells, 0u);
  const auto parallel =
      run_solve<double>(p, fixup_cfg(KernelKind::kScalar), 4);
  expect_bitwise_equal(serial, parallel);
}

TEST(ParallelSweep, SinglePrecisionBitwiseIdentical) {
  const Problem p = Problem::benchmark_cube(10);
  const auto serial = run_solve<float>(p, fixup_cfg(KernelKind::kSimd), 1);
  const auto parallel = run_solve<float>(p, fixup_cfg(KernelKind::kSimd), 4);
  expect_bitwise_equal(serial, parallel);
}

TEST(ParallelSweep, ReflectiveBoundariesBitwiseIdentical) {
  // Reflective faces use the built-in boundary handling; the parallel
  // executor only spans one diagonal, so the serial face bookkeeping
  // around it must be untouched.
  const Problem p = Problem::infinite_medium(8);
  SweepConfig cfg = fixup_cfg(KernelKind::kSimd);
  cfg.mk = 4;
  const auto serial = run_solve<double>(p, cfg, 1);
  const auto parallel = run_solve<double>(p, cfg, 4);
  expect_bitwise_equal(serial, parallel);
}

TEST(ParallelSweep, ThreadCountChangeMidStateIsSafe) {
  // The same SweepState may sweep with different thread counts; the
  // pool and per-worker scratch are rebuilt on the fly.
  const Problem p = Problem::benchmark_cube(8);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  SweepConfig cfg = fixup_cfg(KernelKind::kSimd);
  cfg.mk = 4;
  state.build_source();
  const SweepRunStats serial = state.sweep(cfg, true);
  const double serial_sum = state.flux().moment_sum(0);
  cfg.threads = 3;
  const SweepRunStats par3 = state.sweep(cfg, true);
  EXPECT_EQ(state.flux().moment_sum(0), serial_sum);
  cfg.threads = 1;
  const SweepRunStats again = state.sweep(cfg, true);
  EXPECT_EQ(state.flux().moment_sum(0), serial_sum);
  EXPECT_EQ(serial.cells, par3.cells);
  EXPECT_EQ(serial.chunks, par3.chunks);
  EXPECT_EQ(again.fixup_cells, par3.fixup_cells);
}

TEST(ParallelSweep, ObserverStreamAndTimingUnaffectedByThreads) {
  // Simulated Cell time must depend only on the workload stream, never
  // on the host thread count: a functional run with threads > 1 still
  // matches the trace-driven timing exactly.
  const Problem p = Problem::benchmark_cube(10);
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
      core::OptimizationStage::kSpeLsPoke);
  cfg.sweep.mk = 5;
  cfg.sweep.max_iterations = 2;
  cfg.sweep.fixup_from_iteration = 1;

  core::CellSweep3D trace_runner(p, cfg);
  const core::RunReport trace = trace_runner.run(core::RunMode::kTraceDriven);

  cfg.sweep.threads = 4;
  core::CellSweep3D parallel_runner(p, cfg);
  const core::RunReport func =
      parallel_runner.run(core::RunMode::kFunctional);

  EXPECT_DOUBLE_EQ(trace.seconds, func.seconds);
  EXPECT_DOUBLE_EQ(trace.traffic_bytes, func.traffic_bytes);
  EXPECT_EQ(trace.chunks, func.chunks);
  EXPECT_EQ(trace.flops, func.flops);
  EXPECT_EQ(trace.cell_solves, func.cell_solves);
}

TEST(ParallelSweep, ValidateRejectsNonPositiveThreads) {
  SweepConfig cfg;
  cfg.threads = 0;
  EXPECT_THROW(cfg.validate(10, 6), std::invalid_argument);
}

}  // namespace
}  // namespace cellsweep::sweep
