#include "cellsim/memory.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/counters.h"
#include "sim/fault.h"

namespace cellsweep::cell {

Mic::Mic(const CellSpec& spec)
    : spec_(spec), port_("MIC", spec.mic_bytes_per_s) {}

double Mic::bank_efficiency(int banks_touched) const {
  if (banks_touched < 1) banks_touched = 1;
  const int banks = spec_.memory_banks;
  if (banks_touched >= banks) return 1.0;
  // A request striped over k of n banks can use at most k/n of the
  // aggregate DRAM bandwidth, but command interleaving recovers part of
  // the loss; empirically the penalty is roughly the square root of the
  // naive ratio. Floor at the spec's minimum efficiency.
  const double naive =
      static_cast<double>(banks_touched) / static_cast<double>(banks);
  const double eff = std::sqrt(naive);
  return std::max(eff, spec_.dma_min_efficiency);
}

sim::Tick Mic::submit(sim::Tick now, double bytes, sim::Tick overhead,
                      double efficiency, std::uint64_t elements,
                      int banks_touched, bool is_write) {
  if (efficiency <= 0.0 || efficiency > 1.0)
    throw std::invalid_argument("Mic::submit: efficiency out of (0,1]");
  if (elements < 1) elements = 1;
  // banks_touched <= 0 means "streams over all banks": no penalty, the
  // exact behavior all pre-counter call sites had.
  const int banks = banks_touched < 1 ? spec_.memory_banks : banks_touched;
  double eff = efficiency * bank_efficiency(banks);
  // Reduced efficiency means the payload occupies the port longer, as
  // if it carried bytes/efficiency of traffic, and each element pays
  // one burst-turnaround gap; the logical byte count is still recorded
  // for the Section 6 traffic audit.
  const double inflated =
      bytes / eff + static_cast<double>(elements) * spec_.dram_gap_bytes;
  logical_bytes_ += bytes;

  // Counters (observation only). Elements are attributed round-robin
  // over the touched banks from a rotating cursor -- the deterministic
  // stand-in for the address interleaving the model abstracts away.
  (is_write ? writes_ : reads_) += 1;
  auto& per_bank = is_write ? bank_writes_ : bank_reads_;
  const int total_banks = spec_.memory_banks;
  const std::uint64_t each = elements / static_cast<std::uint64_t>(banks);
  const std::uint64_t rem = elements % static_cast<std::uint64_t>(banks);
  for (int b = 0; b < banks; ++b)
    per_bank[static_cast<std::size_t>((bank_cursor_ + b) % total_banks)] +=
        each + (static_cast<std::uint64_t>(b) < rem ? 1 : 0);
  bank_cursor_ = (bank_cursor_ + static_cast<int>(rem % total_banks)) %
                 total_banks;
  if (eff < efficiency)
    conflict_ += sim::ticks_for_bytes(bytes / eff - bytes / efficiency,
                                      port_.rate());

  // A throttled request hits a bank mid-refresh (or a degraded bank)
  // and streams at a fraction of its normal efficiency. The decision is
  // pure in the port-request sequence number; the extra occupancy is
  // attributed to throttle_ticks, separate from bank conflicts.
  double occupancy = inflated;
  if (faults_ != nullptr && faults_->enabled() &&
      faults_->mic_throttle(fault_seq_++)) {
    const double throttled_eff = eff * faults_->mic_throttle_factor();
    occupancy = bytes / throttled_eff +
                static_cast<double>(elements) * spec_.dram_gap_bytes;
    ++throttled_requests_;
    throttle_ += sim::ticks_for_bytes(occupancy - inflated, port_.rate());
  }

  return port_.submit(now, occupancy, overhead);
}

void Mic::publish_counters(sim::CounterSet& out) const {
  out.set("reads", static_cast<double>(reads_));
  out.set("writes", static_cast<double>(writes_));
  out.set("logical_bytes", logical_bytes_);
  out.set("requests", static_cast<double>(port_.requests()));
  out.set("busy_ticks", static_cast<double>(port_.busy_ticks()));
  out.set("queue_wait_ticks", static_cast<double>(port_.wait_ticks()));
  out.set("bank_conflict_ticks", static_cast<double>(conflict_));
  if (faults_ != nullptr && faults_->enabled()) {
    out.set("throttled_requests", static_cast<double>(throttled_requests_));
    out.set("throttle_ticks", static_cast<double>(throttle_));
  }
  // child() returns a reference into out's children vector, which the
  // next child() call may reallocate: finish each subtree before
  // creating the next one.
  sim::CounterSet& rd = out.child("bank_reads");
  for (int b = 0; b < spec_.memory_banks; ++b) {
    char name[16];
    std::snprintf(name, sizeof name, "bank%02d", b);
    rd.set(name, static_cast<double>(bank_reads_[static_cast<std::size_t>(b)]));
  }
  sim::CounterSet& wr = out.child("bank_writes");
  for (int b = 0; b < spec_.memory_banks; ++b) {
    char name[16];
    std::snprintf(name, sizeof name, "bank%02d", b);
    wr.set(name,
           static_cast<double>(bank_writes_[static_cast<std::size_t>(b)]));
  }
}

void Eib::publish_counters(sim::CounterSet& out) const {
  out.set("grants", static_cast<double>(ring_.requests()));
  out.set("bytes_moved", ring_.bytes_moved());
  out.set("busy_ticks", static_cast<double>(ring_.busy_ticks()));
  out.set("contention_stall_ticks", static_cast<double>(ring_.wait_ticks()));
}

}  // namespace cellsweep::cell
