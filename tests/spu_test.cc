// Unit tests for the SPU intrinsics emulation: numerics of every
// operation, trace recording, and dataflow value-id propagation.
#include <gtest/gtest.h>

#include "spu/intrinsics.h"
#include "spu/trace.h"

namespace cellsweep::spu {
namespace {

TEST(VecDouble2, SplatsAndArithmetic) {
  const vec_double2 a = spu_splats(3.0);
  const vec_double2 b = spu_splats(2.0);
  EXPECT_DOUBLE_EQ(spu_mul(a, b).v[0], 6.0);
  EXPECT_DOUBLE_EQ(spu_add(a, b).v[1], 5.0);
  EXPECT_DOUBLE_EQ(spu_sub(a, b).v[0], 1.0);
}

TEST(VecDouble2, MaddMatchesScalar) {
  vec_double2 a{{1.5, -2.0}}, b{{4.0, 0.5}}, c{{0.25, 10.0}};
  const vec_double2 r = spu_madd(a, b, c);
  EXPECT_DOUBLE_EQ(r.v[0], 1.5 * 4.0 + 0.25);
  EXPECT_DOUBLE_EQ(r.v[1], -2.0 * 0.5 + 10.0);
}

TEST(VecDouble2, NmsubMatchesScalar) {
  vec_double2 a{{2.0, 3.0}}, b{{5.0, 7.0}}, c{{100.0, 1.0}};
  const vec_double2 r = spu_nmsub(a, b, c);
  EXPECT_DOUBLE_EQ(r.v[0], 100.0 - 10.0);
  EXPECT_DOUBLE_EQ(r.v[1], 1.0 - 21.0);
}

TEST(VecFloat4, LaneArithmetic) {
  const vec_float4 a = spu_splats(2.0f);
  vec_float4 b{{1.f, 2.f, 3.f, 4.f}};
  const vec_float4 m = spu_mul(a, b);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(m.v[i], 2.0f * (i + 1));
  const vec_float4 f = spu_madd(a, b, b);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(f.v[i], 3.0f * (i + 1));
}

TEST(Compare, MaskAllOrNothing) {
  vec_double2 a{{1.0, -1.0}}, zero{{0.0, 0.0}};
  const vec_mask2 m = spu_cmpgt(a, zero);
  EXPECT_EQ(m.m[0], ~0ULL);
  EXPECT_EQ(m.m[1], 0ULL);
  EXPECT_TRUE(any(m));
  const vec_mask2 none = spu_cmpgt(zero, a);  // 0 > 1 false, 0 > -1 true
  EXPECT_TRUE(any(none));
}

TEST(Compare, NoLaneSet) {
  vec_double2 lo{{-1.0, -2.0}}, hi{{0.0, 0.0}};
  EXPECT_FALSE(any(spu_cmpgt(lo, hi)));
}

TEST(Select, PicksPerLane) {
  vec_double2 a{{1.0, 2.0}}, b{{10.0, 20.0}};
  vec_mask2 m;
  m.m[0] = ~0ULL;  // take b in lane 0
  m.m[1] = 0;      // take a in lane 1
  const vec_double2 r = spu_sel(a, b, m);
  EXPECT_DOUBLE_EQ(r.v[0], 10.0);
  EXPECT_DOUBLE_EQ(r.v[1], 2.0);
}

TEST(SelectFloat, PicksPerLane) {
  vec_float4 a{{1.f, 2.f, 3.f, 4.f}}, b{{-1.f, -2.f, -3.f, -4.f}};
  vec_mask4 m;
  m.m[1] = ~0U;
  m.m[3] = ~0U;
  const vec_float4 r = spu_sel(a, b, m);
  EXPECT_FLOAT_EQ(r.v[0], 1.f);
  EXPECT_FLOAT_EQ(r.v[1], -2.f);
  EXPECT_FLOAT_EQ(r.v[2], 3.f);
  EXPECT_FLOAT_EQ(r.v[3], -4.f);
}

TEST(LoadStore, RoundTrip) {
  alignas(16) double buf[2] = {1.25, -3.5};
  const vec_double2 v = vec_load(buf);
  alignas(16) double out[2] = {};
  vec_store(out, v);
  EXPECT_DOUBLE_EQ(out[0], 1.25);
  EXPECT_DOUBLE_EQ(out[1], -3.5);
}

TEST(Pack, BuildsVectorFromScalars) {
  const vec_double2 v = vec_pack(1.0, 2.0);
  EXPECT_DOUBLE_EQ(v.v[0], 1.0);
  EXPECT_DOUBLE_EQ(v.v[1], 2.0);
  const vec_float4 f = vec_pack(1.f, 2.f, 3.f, 4.f);
  EXPECT_FLOAT_EQ(f.v[3], 4.f);
}

TEST(Extract, ReadsLane) {
  vec_double2 v{{7.0, 8.0}};
  EXPECT_DOUBLE_EQ(vec_extract(v, 0), 7.0);
  EXPECT_DOUBLE_EQ(vec_extract(v, 1), 8.0);
}

// ---------------------------------------------------------------------------
// Trace recording
// ---------------------------------------------------------------------------

TEST(Trace, NothingRecordedWithoutRecorder) {
  ASSERT_EQ(TraceRecorder::active(), nullptr);
  const vec_double2 a = spu_splats(1.0);
  EXPECT_EQ(a.id, kNoValue);  // no ids handed out
}

TEST(Trace, RecordsOpsAndFlops) {
  TraceRecorder rec;
  const vec_double2 a = spu_splats(1.0);
  const vec_double2 b = spu_splats(2.0);
  const vec_double2 c = spu_madd(a, b, a);
  (void)c;
  const Trace& t = rec.trace();
  EXPECT_EQ(t.count(Op::kShuffle), 2u);
  EXPECT_EQ(t.count(Op::kFmaDouble), 1u);
  EXPECT_EQ(t.flops, 4u);  // DP madd = 2 lanes x 2 ops
}

TEST(Trace, SingleFlopAccounting) {
  TraceRecorder rec;
  const vec_float4 a = spu_splats(1.0f);
  (void)spu_madd(a, a, a);  // 4 lanes x 2 = 8 flops
  (void)spu_mul(a, a);      // 4 flops
  EXPECT_EQ(rec.trace().flops, 12u);
}

TEST(Trace, DataflowIdsChain) {
  TraceRecorder rec;
  const vec_double2 a = spu_splats(1.0);
  const vec_double2 b = spu_mul(a, a);
  const vec_double2 c = spu_add(b, a);
  ASSERT_NE(a.id, kNoValue);
  const auto& insts = rec.trace().insts;
  ASSERT_EQ(insts.size(), 3u);
  EXPECT_EQ(insts[1].src0, a.id);
  EXPECT_EQ(insts[1].dst, b.id);
  EXPECT_EQ(insts[2].src0, b.id);
  EXPECT_EQ(insts[2].dst, c.id);
}

TEST(Trace, OnlyOneRecorderAllowed) {
  TraceRecorder rec;
  EXPECT_THROW(TraceRecorder{}, std::logic_error);
}

TEST(Trace, RecorderDeactivatesOnDestruction) {
  {
    TraceRecorder rec;
    EXPECT_EQ(TraceRecorder::active(), &rec);
  }
  EXPECT_EQ(TraceRecorder::active(), nullptr);
}

TEST(Trace, TakeTraceResets) {
  TraceRecorder rec;
  (void)spu_splats(1.0);
  Trace t = rec.take_trace();
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(rec.trace().size(), 0u);
}

TEST(Trace, Markers) {
  TraceRecorder rec;
  mark_fixed(3);
  mark_branch(true);
  mark_branch(false);
  mark_store(2);
  mark_double_op(4);
  mark_pack_loads(5);
  const Trace& t = rec.trace();
  EXPECT_EQ(t.count(Op::kFixed), 3u);
  EXPECT_EQ(t.count(Op::kBranch), 1u);
  EXPECT_EQ(t.count(Op::kBranchMiss), 1u);
  EXPECT_EQ(t.count(Op::kStore), 2u);
  EXPECT_EQ(t.count(Op::kFmaDouble), 4u);
  EXPECT_EQ(t.count(Op::kLoad), 5u);
}

TEST(Trace, OpNamesAreDistinctive) {
  EXPECT_STREQ(op_name(Op::kFmaDouble), "dfma");
  EXPECT_STREQ(op_name(Op::kLoad), "lqd");
  EXPECT_STREQ(op_name(Op::kBranchMiss), "br!");
}

TEST(Trace, NumericsIdenticalWithAndWithoutRecording) {
  vec_double2 a{{1.1, 2.2}}, b{{3.3, 4.4}}, c{{5.5, 6.6}};
  const vec_double2 plain = spu_madd(a, b, c);
  double traced0, traced1;
  {
    TraceRecorder rec;
    const vec_double2 t = spu_madd(a, b, c);
    traced0 = t.v[0];
    traced1 = t.v[1];
  }
  EXPECT_EQ(plain.v[0], traced0);
  EXPECT_EQ(plain.v[1], traced1);
}

}  // namespace
}  // namespace cellsweep::spu
