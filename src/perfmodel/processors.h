// Analytic cost models for the comparator processors of Figure 11 and
// for the PPE-only stages of Figure 5.
//
// The paper compares the Cell BE against contemporary processors
// (IBM Power5, AMD Opteron, and "conventional" processors ~20x slower).
// Those machines are not reproducible; per the substitution rule we
// model each as a roofline: the per-cell-solve time is the larger of a
// compute leg (kernel flops over the achievable flop rate) and a memory
// leg (streamed working-set bytes over sustained bandwidth). Peak rates
// and bandwidths are the published hardware numbers; the achievable
// fractions are the single calibrated parameter per machine, chosen to
// be microarchitecturally plausible for this branchy, divide-heavy,
// recursion-limited kernel (documented in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cellsweep::perf {

/// Roofline description of one scalar processor running Sweep3D.
struct ProcessorModel {
  std::string name;
  double clock_hz = 0;
  double peak_flops_per_cycle = 0;   ///< per core, FMA counted as 2
  double achievable_fraction = 0;    ///< fraction of peak on this kernel
  double mem_bytes_per_s = 0;        ///< sustained stream bandwidth
  double bytes_per_solve = 0;        ///< cache-filtered traffic per solve

  double peak_flops() const { return clock_hz * peak_flops_per_cycle; }

  /// Seconds to perform @p cell_solves solves of @p flops total.
  double seconds(std::uint64_t cell_solves, std::uint64_t flops) const;
};

/// The PPE running the unmodified scalar port compiled with GCC
/// (Figure 5's 22.3 s starting point).
ProcessorModel ppe_gcc();
/// The PPE with IBM XLC's optimizer (19.9 s).
ProcessorModel ppe_xlc();

/// Figure 11 comparators.
ProcessorModel power5();
ProcessorModel opteron();
ProcessorModel itanium2();
ProcessorModel xeon();
ProcessorModel ppc970();

/// All Figure 11 comparators in display order.
std::vector<ProcessorModel> figure11_lineup();

}  // namespace cellsweep::perf
