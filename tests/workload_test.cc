// Tests for the workload model: the standalone enumerator must emit
// exactly the diagonal stream the functional sweeper emits, and the
// transfer plans must reproduce the paper's byte audit.
#include <gtest/gtest.h>

#include <vector>

#include "core/workload.h"
#include "sweep/problem.h"
#include "sweep/sweeper.h"

namespace cellsweep::core {
namespace {

TEST(TransferPlan, RowInventoryPerLine) {
  // Per line: bulk gets = 2*nm+1 rows, faces = 2, puts = nm+2.
  const TransferPlan plan = plan_chunk(ChunkShape{4, 50, 6, 8, true});
  EXPECT_EQ(plan.bulk_get_rows, 4 * 13);
  EXPECT_EQ(plan.face_get_rows, 4 * 2);
  EXPECT_EQ(plan.put_rows, 4 * 8);
  EXPECT_EQ(plan.row_bytes, 512u);  // padded 50-double row
}

TEST(TransferPlan, UnalignedRowsAre16ByteMultiples) {
  const TransferPlan plan = plan_chunk(ChunkShape{4, 50, 6, 8, false});
  EXPECT_EQ(plan.row_bytes, 400u);
  const TransferPlan odd = plan_chunk(ChunkShape{4, 45, 6, 8, false});
  EXPECT_EQ(odd.row_bytes % 16, 0u);
}

TEST(TransferPlan, BytesAddUp) {
  const TransferPlan plan = plan_chunk(ChunkShape{4, 50, 6, 8, true});
  EXPECT_EQ(plan.get_bytes(), plan.bulk_get_bytes() + plan.face_get_bytes());
  EXPECT_EQ(plan.total_bytes(), plan.get_bytes() + plan.put_bytes());
  EXPECT_GT(plan.ls_buffer_bytes, plan.bulk_get_bytes());
}

TEST(TransferPlan, SinglePrecisionHalvesRows) {
  const TransferPlan dp = plan_chunk(ChunkShape{4, 50, 6, 8, true});
  const TransferPlan sp = plan_chunk(ChunkShape{4, 50, 6, 4, true});
  EXPECT_EQ(sp.row_bytes, 256u);
  EXPECT_EQ(sp.bulk_get_rows, dp.bulk_get_rows);  // same row count
  EXPECT_LT(sp.total_bytes(), dp.total_bytes());
}

TEST(ChunkSplitting, MatchesBundleSize) {
  EXPECT_EQ(chunks_for_lines(1), 1);
  EXPECT_EQ(chunks_for_lines(4), 1);
  EXPECT_EQ(chunks_for_lines(5), 2);
  EXPECT_EQ(chunks_for_lines(60), 15);
}

TEST(Enumerator, MatchesFunctionalSweeperStream) {
  // The trace-driven enumerator must produce the identical DiagonalWork
  // stream as the functional sweep (same order, same fields).
  const sweep::Problem p = sweep::Problem::benchmark_cube(10);
  sweep::SnQuadrature quad(6);
  sweep::SweepConfig cfg;
  cfg.mk = 5;
  cfg.mmi = 3;

  std::vector<sweep::DiagonalWork> functional;
  sweep::SweepState<double> state(p, quad, 2, sweep::kBenchmarkMoments);
  state.build_source();
  state.sweep(cfg, /*fixup=*/true,
              [&](const sweep::DiagonalWork& w) { functional.push_back(w); });

  std::vector<sweep::DiagonalWork> enumerated;
  enumerate_sweep(p.grid(), quad.angles_per_octant(), cfg, /*fixup=*/true,
                  [&](const sweep::DiagonalWork& w) {
                    enumerated.push_back(w);
                  });

  ASSERT_EQ(functional.size(), enumerated.size());
  for (std::size_t d = 0; d < functional.size(); ++d) {
    EXPECT_EQ(functional[d].octant, enumerated[d].octant) << d;
    EXPECT_EQ(functional[d].ablock, enumerated[d].ablock) << d;
    EXPECT_EQ(functional[d].kblock, enumerated[d].kblock) << d;
    EXPECT_EQ(functional[d].diagonal, enumerated[d].diagonal) << d;
    EXPECT_EQ(functional[d].nlines, enumerated[d].nlines) << d;
    EXPECT_EQ(functional[d].it, enumerated[d].it) << d;
    EXPECT_EQ(functional[d].fixup, enumerated[d].fixup) << d;
  }
}

TEST(Enumerator, LineCountInvariantAcrossBlocking) {
  const sweep::Grid g = sweep::Grid::cube(12);
  for (auto [mk, mmi] : {std::pair{1, 1}, {4, 3}, {12, 6}, {6, 2}}) {
    sweep::SweepConfig cfg;
    cfg.mk = mk;
    cfg.mmi = mmi;
    std::uint64_t lines = 0;
    enumerate_sweep(g, 6, cfg, false, [&](const sweep::DiagonalWork& w) {
      lines += w.nlines;
    });
    EXPECT_EQ(lines, 8u * 6u * 12u * 12u) << mk << "," << mmi;
  }
}

TEST(Enumerator, DiagonalWidthBounded) {
  const sweep::Grid g = sweep::Grid::cube(20);
  sweep::SweepConfig cfg;
  cfg.mk = 10;
  cfg.mmi = 3;
  int max_width = 0;
  enumerate_sweep(g, 6, cfg, false, [&](const sweep::DiagonalWork& w) {
    max_width = std::max(max_width, w.nlines);
  });
  EXPECT_EQ(max_width, cfg.mk * cfg.mmi);
}

TEST(Audit, FiftyCubedTrafficMatchesPaper) {
  // The Section 6 audit: "the SPEs transfer 17.6 Gbytes of data" for
  // the 50-cubed run. Our moment set reproduces that within ~5%.
  CellSweepConfig cfg = CellSweepConfig::from_stage(
      OptimizationStage::kSpeLsPoke);
  const WorkloadTotals totals = audit_workload(
      sweep::Grid::cube(50), 6, cfg, sweep::kBenchmarkMoments);
  EXPECT_NEAR(totals.bytes / 1e9, 17.6, 1.5);
  EXPECT_EQ(totals.cell_solves, 125000ull * 48 * 12);
  EXPECT_EQ(totals.lines, 50ull * 50 * 48 * 12);
}

TEST(Audit, FixupScheduleCountsInFlops) {
  CellSweepConfig cfg =
      CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
  cfg.sweep.max_iterations = 4;
  cfg.sweep.fixup_from_iteration = 2;
  const WorkloadTotals with_fixups =
      audit_workload(sweep::Grid::cube(10), 6, cfg, 6);
  cfg.sweep.fixup_from_iteration = 99;
  const WorkloadTotals without =
      audit_workload(sweep::Grid::cube(10), 6, cfg, 6);
  EXPECT_GT(with_fixups.flops, without.flops);
  EXPECT_EQ(with_fixups.bytes, without.bytes);
}

TEST(Audit, SinglePrecisionHalvesTraffic) {
  CellSweepConfig dp =
      CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
  CellSweepConfig sp = dp;
  sp.precision = Precision::kSingle;
  const WorkloadTotals tdp = audit_workload(sweep::Grid::cube(20), 6, dp, 6);
  const WorkloadTotals tsp = audit_workload(sweep::Grid::cube(20), 6, sp, 6);
  EXPECT_NEAR(tsp.bytes / tdp.bytes, 0.5, 0.05);
}

}  // namespace
}  // namespace cellsweep::core
