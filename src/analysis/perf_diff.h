// Machine-readable perf regression checking.
//
// Compares two BENCH_<scenario>.json documents (bench/bench_common.h
// emits them; schema "cellsweep-bench-v2") run by run and metric by
// metric. The contract mirrors perf-CI practice:
//   * schema-version or scenario mismatch is a hard error, never a
//     silent pass -- a layout change must come with a regenerated
//     baseline;
//   * fingerprint (problem size, iteration count, chip shape) mismatch
//     is a hard error: numbers from different experiments are not
//     comparable;
//   * compared metrics are lower-is-better (seconds, grind_seconds by
//     default); a run regresses when current > baseline * (1 +
//     threshold). Improvements never fail;
//   * JSON null metrics (the NaN contract of the emitters) and runs
//     missing a metric are skipped, not failed;
//   * one pass reports everything: gate failures do not stop the
//     metric comparison, so a single CI run shows every error and
//     every regressed metric at once.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace cellsweep::util {
class JsonValue;
}

namespace cellsweep::analysis {

/// The BENCH JSON layout version this differ understands.
inline constexpr const char* kBenchSchema = "cellsweep-bench-v2";

struct PerfDiffOptions {
  /// Allowed relative growth of a lower-is-better metric.
  double default_threshold = 0.25;
  /// Extra or overriding per-metric thresholds; metrics named here are
  /// compared in addition to the defaults.
  std::vector<std::pair<std::string, double>> metric_thresholds;
  /// Require structural equality of the "fingerprint" objects.
  bool check_fingerprint = true;
};

enum class DiffStatus : unsigned char {
  kOk,        ///< within threshold
  kImproved,  ///< current < baseline
  kRegressed, ///< current > baseline * (1 + threshold)
  kSkipped,   ///< metric null or absent on either side
};

const char* diff_status_name(DiffStatus s);

/// One (run, metric) comparison.
struct DiffRow {
  std::string run;
  std::string metric;
  double baseline = 0;
  double current = 0;
  double ratio = 0;      ///< current / baseline (0 when skipped)
  double threshold = 0;  ///< relative growth allowed
  DiffStatus status = DiffStatus::kSkipped;
  std::string note;      ///< why a row was skipped
};

struct PerfDiffResult {
  /// Populated even when errors is non-empty (the one-pass contract):
  /// whatever rows were structurally comparable are compared.
  std::vector<DiffRow> rows;
  /// Schema / scenario / fingerprint / structure errors, all of them.
  /// Non-empty means the documents were not comparable (exit code 2
  /// territory).
  std::vector<std::string> errors;

  bool regressed() const;
  bool ok() const { return errors.empty() && !regressed(); }
};

/// Diffs @p current against @p baseline. Both must be parsed
/// BENCH_*.json documents.
PerfDiffResult diff_bench(const util::JsonValue& current,
                          const util::JsonValue& baseline,
                          const PerfDiffOptions& opt = {});

}  // namespace cellsweep::analysis
