// Tests for the perf-regression harness: the JSON reader it is built
// on, and the diff contract (threshold semantics, schema / scenario /
// fingerprint gates, null handling, missing-run detection).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/perf_diff.h"
#include "util/json.h"

namespace cellsweep {
namespace {

using analysis::DiffStatus;
using analysis::PerfDiffOptions;
using analysis::PerfDiffResult;
using util::JsonValue;

// ---------------------------------------------------------------------
// JSON reader

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(util::parse_json("null").is_null());
  EXPECT_TRUE(util::parse_json("true").bool_v);
  EXPECT_FALSE(util::parse_json("false").bool_v);
  EXPECT_EQ(util::parse_json("42").number_v, 42.0);
  EXPECT_EQ(util::parse_json("-1.5e3").number_v, -1500.0);
  EXPECT_EQ(util::parse_json("\"hi\"").string_v, "hi");
}

TEST(Json, RoundTripsPreciseDoubles) {
  // The emitters print %.17g; the reader must recover the exact bits.
  const double v = 0.1234567890123456789;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  EXPECT_EQ(util::parse_json(buf).number_v, v);
}

TEST(Json, ParsesNestedStructure) {
  const JsonValue doc = util::parse_json(
      R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}, "f": true})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array_v.size(), 3u);
  EXPECT_EQ(a->array_v[1].number_v, 2.0);
  EXPECT_TRUE(a->array_v[2].find("b")->is_null());
  EXPECT_EQ(doc.find("c")->string_or("d", ""), "e");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, PreservesKeyOrderAndDecodesEscapes) {
  const JsonValue doc =
      util::parse_json(R"({"z": 1, "a": 2, "s": "x\n\t\"é"})");
  ASSERT_EQ(doc.object_v.size(), 3u);
  EXPECT_EQ(doc.object_v[0].first, "z");
  EXPECT_EQ(doc.object_v[1].first, "a");
  EXPECT_EQ(doc.find("s")->string_v, "x\n\t\"\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(util::parse_json(""), util::JsonError);
  EXPECT_THROW(util::parse_json("{"), util::JsonError);
  EXPECT_THROW(util::parse_json("{\"a\" 1}"), util::JsonError);
  EXPECT_THROW(util::parse_json("[1,]"), util::JsonError);
  EXPECT_THROW(util::parse_json("\"unterminated"), util::JsonError);
  EXPECT_THROW(util::parse_json("nul"), util::JsonError);
  EXPECT_THROW(util::parse_json("1 2"), util::JsonError);  // trailing junk
  EXPECT_THROW(util::parse_json("NaN"), util::JsonError);
}

// ---------------------------------------------------------------------
// diff_bench

/// A minimal BENCH document with one run and the given metric values
/// (raw JSON fragments, so tests can inject null).
std::string bench_doc(const std::string& seconds,
                      const std::string& grind = "1.0",
                      const std::string& schema = "cellsweep-bench-v2",
                      const std::string& cube = "20") {
  return std::string("{\"schema\": \"") + schema +
         "\", \"scenario\": \"fig5\", \"fingerprint\": {\"cube\": " + cube +
         ", \"iterations\": 12}, \"runs\": [{\"name\": \"stage\", "
         "\"metrics\": {\"seconds\": " +
         seconds + ", \"grind_seconds\": " + grind + "}}]}";
}

PerfDiffResult diff(const std::string& cur, const std::string& base,
                    const PerfDiffOptions& opt = {}) {
  return analysis::diff_bench(util::parse_json(cur), util::parse_json(base),
                              opt);
}

const analysis::DiffRow* row_for(const PerfDiffResult& r,
                                 const std::string& metric) {
  for (const auto& row : r.rows)
    if (row.metric == metric) return &row;
  return nullptr;
}

TEST(PerfDiff, WithinThresholdPasses) {
  // +20% on a 25% threshold: ok, not a regression.
  const PerfDiffResult r = diff(bench_doc("1.2"), bench_doc("1.0"));
  EXPECT_TRUE(r.ok());
  const analysis::DiffRow* s = row_for(r, "seconds");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->status, DiffStatus::kOk);
  EXPECT_DOUBLE_EQ(s->ratio, 1.2);
}

TEST(PerfDiff, AboveThresholdRegresses) {
  const PerfDiffResult r = diff(bench_doc("1.5"), bench_doc("1.0"));
  EXPECT_TRUE(r.regressed());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(row_for(r, "seconds")->status, DiffStatus::kRegressed);
  // grind_seconds is unchanged: only the bad metric flags.
  EXPECT_EQ(row_for(r, "grind_seconds")->status, DiffStatus::kOk);
}

TEST(PerfDiff, ImprovementNeverFails) {
  const PerfDiffResult r = diff(bench_doc("0.1"), bench_doc("1.0"));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(row_for(r, "seconds")->status, DiffStatus::kImproved);
}

TEST(PerfDiff, CustomThresholdOverridesDefault) {
  PerfDiffOptions opt;
  opt.metric_thresholds.emplace_back("seconds", 0.10);
  const PerfDiffResult r = diff(bench_doc("1.2"), bench_doc("1.0"), opt);
  EXPECT_TRUE(r.regressed());  // +20% > 10%
  EXPECT_EQ(row_for(r, "seconds")->threshold, 0.10);
  // grind_seconds keeps the default.
  EXPECT_EQ(row_for(r, "grind_seconds")->threshold, 0.25);
}

TEST(PerfDiff, SchemaMismatchIsHardError) {
  const PerfDiffResult r =
      diff(bench_doc("1.0"), bench_doc("1.0", "1.0", "cellsweep-bench-v0"));
  EXPECT_FALSE(r.errors.empty());
  EXPECT_FALSE(r.ok());
  // One-pass contract: the gate failure is reported AND the metric
  // comparison still runs, so one CI log shows the whole picture.
  EXPECT_FALSE(r.rows.empty());
}

TEST(PerfDiff, FingerprintMismatchIsHardError) {
  const PerfDiffResult r = diff(
      bench_doc("1.0"), bench_doc("1.0", "1.0", "cellsweep-bench-v2", "50"));
  EXPECT_FALSE(r.errors.empty());
  EXPECT_FALSE(r.rows.empty());  // comparison still ran (one pass)

  PerfDiffOptions opt;
  opt.check_fingerprint = false;
  const PerfDiffResult relaxed = diff(
      bench_doc("1.0"), bench_doc("1.0", "1.0", "cellsweep-bench-v2", "50"),
      opt);
  EXPECT_TRUE(relaxed.ok());
}

TEST(PerfDiff, ReportsEverySimultaneousRegression) {
  // Two metrics regress at once: both rows must flag in a single pass.
  // The old behavior (first failure wins) made CI a fix-one-rerun-
  // find-the-next loop.
  const PerfDiffResult r = diff(bench_doc("2.0", "3.0"), bench_doc("1.0"));
  EXPECT_TRUE(r.regressed());
  EXPECT_EQ(row_for(r, "seconds")->status, DiffStatus::kRegressed);
  EXPECT_EQ(row_for(r, "grind_seconds")->status, DiffStatus::kRegressed);
}

TEST(PerfDiff, ReportsAllGateFailuresAndRegressionsTogether) {
  // Schema AND scenario AND fingerprint mismatch AND a regressed
  // metric: every gate failure is collected and the rows still show
  // the regression.
  const std::string cur =
      "{\"schema\": \"cellsweep-bench-v1\", \"scenario\": \"other\", "
      "\"fingerprint\": {\"cube\": 50, \"iterations\": 12}, \"runs\": ["
      "{\"name\": \"stage\", \"metrics\": {\"seconds\": 9.0, "
      "\"grind_seconds\": 1.0}}]}";
  const PerfDiffResult r = diff(cur, bench_doc("1.0"));
  EXPECT_GE(r.errors.size(), 3u);  // schema + scenario + fingerprint
  EXPECT_EQ(row_for(r, "seconds")->status, DiffStatus::kRegressed);
  EXPECT_EQ(row_for(r, "grind_seconds")->status, DiffStatus::kOk);
}

TEST(PerfDiff, NullAndAbsentMetricsAreSkipped) {
  // grind null on one side: skipped, not failed -- even at a huge
  // seconds regression threshold margin on the other metric.
  const PerfDiffResult r = diff(bench_doc("1.0", "null"), bench_doc("1.0"));
  EXPECT_TRUE(r.ok());
  const analysis::DiffRow* g = row_for(r, "grind_seconds");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->status, DiffStatus::kSkipped);
  EXPECT_FALSE(g->note.empty());
}

TEST(PerfDiff, NonPositiveBaselineIsSkipped) {
  const PerfDiffResult r = diff(bench_doc("1.0"), bench_doc("0"));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(row_for(r, "seconds")->status, DiffStatus::kSkipped);
}

TEST(PerfDiff, RunMissingFromCurrentIsError) {
  // Dropping a baseline run from the bench must not silently pass: a
  // deleted benchmark hides exactly the regression it used to catch.
  const std::string cur =
      "{\"schema\": \"cellsweep-bench-v2\", \"scenario\": \"fig5\", "
      "\"fingerprint\": {\"cube\": 20, \"iterations\": 12}, \"runs\": []}";
  const PerfDiffResult r = diff(cur, bench_doc("1.0"));
  EXPECT_FALSE(r.errors.empty());
  EXPECT_FALSE(r.ok());
}

TEST(PerfDiff, ExtraRunInCurrentIsIgnored) {
  // New benches may land before their baseline is regenerated.
  const std::string cur =
      "{\"schema\": \"cellsweep-bench-v2\", \"scenario\": \"fig5\", "
      "\"fingerprint\": {\"cube\": 20, \"iterations\": 12}, \"runs\": ["
      "{\"name\": \"stage\", \"metrics\": {\"seconds\": 1.0, "
      "\"grind_seconds\": 1.0}}, "
      "{\"name\": \"new_stage\", \"metrics\": {\"seconds\": 9.0}}]}";
  const PerfDiffResult r = diff(cur, bench_doc("1.0"));
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace cellsweep
