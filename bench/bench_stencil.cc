// Second workload on the machine model: the even/odd red-black stencil
// (workloads/stencil) streamed through the same core::StreamingPipeline
// as the sweep.
//
// Runs the sync-protocol ladder (mailbox -> direct LS poke ->
// distributed atomic) on one grid so the deltas isolate the protocol
// cost under a workload with no wavefront barriers: every block
// free-runs on its face-neighbor dependencies alone.
#include "bench/bench_common.h"
#include "workloads/stencil/stencil.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  const int cube = opt.cube_or(32);

  stencil::StencilSpec spec;
  spec.nx = spec.ny = spec.nz = cube;
  // Blocks must divide the grid: the largest divisor in [2, 8].
  int b = 2;
  for (int d = 2; d <= 8; ++d)
    if (cube % d == 0) b = d;
  spec.bx = spec.by = spec.bz = b;
  spec.origin = "<bench>";
  spec.validate();

  bench::print_header("Stencil workload: sync protocol ladder (" +
                      std::to_string(cube) + "^3, blocks " +
                      std::to_string(b) + "^3)");

  util::TextTable table({"sync protocol", "run time [s]", "grind [ns]",
                         "traffic [GB]"});
  bench::BenchJson json("stencil", cube, spec.iterations);
  for (cell::SyncProtocol sync :
       {cell::SyncProtocol::kMailbox, cell::SyncProtocol::kLsPoke,
        cell::SyncProtocol::kAtomicDistributed}) {
    core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
        core::OptimizationStage::kSpeLsPoke);
    cfg.sync = sync;
    stencil::CellStencil runner(spec, cfg);
    const stencil::StencilReport rep =
        runner.run(core::RunMode::kTraceDriven);
    json.add_run(cell::sync_protocol_name(sync), rep.run);
    table.add_row({cell::sync_protocol_name(sync),
                   bench::fmt("%.6f", rep.run.seconds),
                   bench::fmt("%.2f", rep.run.grind_seconds * 1e9),
                   bench::fmt("%.3f", rep.run.traffic_bytes / 1e9)});
  }
  table.print(std::cout);
  std::cout << "\nNo wavefront barriers: the stencil's two color phases\n"
               "free-run on face-neighbor dependencies, so the protocol\n"
               "ladder prices pure notification cost.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
