#include "core/orchestrator.h"

#include <algorithm>

#include "perfmodel/processors.h"
#include "sweep/plan.h"

namespace cellsweep::core {
namespace {

std::size_t real_bytes_of(Precision p) {
  return p == Precision::kDouble ? 8 : 4;
}

/// Local-store placement of the sweep: 4 KB of resident per-angle
/// constants plus one staging buffer per rotation slot, sized for the
/// largest chunk's working set. The pipeline validates the budget --
/// buffers x working set (plus the constants) must fit in every SPE's
/// 256 KB -- and throws cell::LocalStoreOverflow otherwise.
LsPlacement sweep_placement(const CellSweepConfig& cfg,
                            const sweep::Grid& grid, int nm) {
  LsPlacement p;
  p.resident.emplace_back("angle-constants", 4 * 1024);
  p.buffer_bytes =
      plan_chunk(ChunkShape{sweep::kBundleLines, grid.it, nm,
                            real_bytes_of(cfg.precision), cfg.aligned_rows})
          .ls_buffer_bytes;
  return p;
}

/// Wavefront dependency of one diagonal's chunk c on the previous
/// diagonal: the lines of chunk c sit one diagonal step from lines
/// covered by the previous diagonal's chunks c-1..c+1; the diagonal
/// tail is gated by the upstream tail. The pipeline's UpstreamView
/// already encodes the dispatch-dependent readiness semantics
/// (completion under centralized dispatch, compute end + atomic hop
/// when distributed).
sim::Tick sweep_dependency(const UpstreamView& u, int c) {
  if (u.ready.empty()) return u.barrier;
  const int n = static_cast<int>(u.ready.size());
  sim::Tick t = u.barrier;
  for (int p = std::max(0, c - 1); p <= std::min(n - 1, c + 1); ++p)
    t = std::max(t, u.ready[p]);
  if (c + 1 >= n) t = std::max(t, u.ready[n - 1]);
  return t + u.hop;
}

}  // namespace

TimingEngine::TimingEngine(const CellSweepConfig& cfg,
                           const sweep::Grid& grid, int nm)
    : cfg_(cfg),
      grid_(grid),
      nm_(nm),
      kernels_(cfg.chip),
      pipeline_(cfg.stream(), sweep_placement(cfg, grid, nm)) {
  // Plan-cache hint: start from an already calibrated cost model (the
  // trace-scheduled chunk costs are the expensive part) instead of a
  // cold cache. Pure memoization -- the cached costs are deterministic
  // functions of (chip, chunk shape), so warm and cold runs report
  // byte-identical timing (pinned by a test).
  if (cfg.warm_kernels) kernels_ = *cfg.warm_kernels;
}

TimingEngine::~TimingEngine() = default;

void TimingEngine::on_diagonal(const sweep::DiagonalWork& w) {
  // Source-moment rebuild at each iteration start: one streaming pass
  // over flux + source + the external source field. Bandwidth-bound;
  // the madds are fully pipelined underneath.
  const bool iteration_start =
      w.octant == 0 && w.ablock == 0 && w.kblock == 0 && w.diagonal == 0;
  if (iteration_start) {
    const double bytes = (2.0 * nm_ + 1.0) *
                         static_cast<double>(grid_.cells()) *
                         static_cast<double>(real_bytes_of(cfg_.precision));
    pipeline_.memory_pass("source-rebuild", bytes);
  }

  // Wavefront structure. Within one (octant, angle-block, K-block)
  // block the dependency is per-line: a chunk of this diagonal needs
  // only its neighboring chunks of the previous diagonal (the
  // sweep_dependency policy), so execution pipelines across diagonals.
  // Blocks are sequential (the paper's sweep() processes them in
  // order), so a new block opens a new pipeline block: a hard barrier
  // behind everything outstanding.
  const long long block_key =
      (static_cast<long long>(w.octant) * 64 + w.ablock) * 1024 + w.kblock;
  const bool new_block = block_key != current_block_key_;
  current_block_key_ = block_key;

  // Chunk list of this diagonal -- the same ChunkPlan the functional
  // sweeper executes (the plan constructor throws on functional/timing
  // drift) -- each chunk priced by the trace-scheduled kernel cost
  // model and sized by its DMA transfer plan.
  const sweep::ChunkPlan plan(cfg_.sweep, grid_.jt, w);
  const std::size_t rb = real_bytes_of(cfg_.precision);
  std::vector<StreamChunkSpec> specs;
  specs.reserve(plan.chunks().size());
  for (const sweep::ChunkDesc& pc : plan.chunks()) {
    const ChunkCost& cost =
        kernels_.chunk_cost(w.kernel, cfg_.precision, pc.nlines, w.it, nm_,
                            w.fixup, cfg_.gotos_eliminated);
    StreamChunkSpec sc;
    sc.index = pc.index;
    sc.plan =
        plan_chunk(ChunkShape{pc.nlines, w.it, nm_, rb, cfg_.aligned_rows});
    sc.kernel_cycles = cost.cycles;
    sc.kernel_name = w.fixup ? "kernel+fixup" : "kernel";
    sc.flops = cost.flops;
    sc.work_units = static_cast<std::uint64_t>(pc.nlines) * w.it;
    sc.stats = cost.stats;
    specs.push_back(sc);
  }
  pipeline_.run_batch(specs, sweep_dependency, new_block);
}

const sweep::SnQuadrature& CellSweep3D::quadrature(
    std::optional<sweep::SnQuadrature>& own) const {
  // Plan-cache hint: a prebuilt quadrature of the right order (the
  // solve server memoizes the LQn tables per deck) replaces the
  // per-run rebuild; the tables are a pure function of the order, so
  // results are byte-identical either way.
  if (cfg_.quadrature && cfg_.quadrature->order() == sn_order_)
    return *cfg_.quadrature;
  own.emplace(sn_order_);
  return *own;
}

CellSweep3D::CellSweep3D(const sweep::Problem& problem,
                         const CellSweepConfig& cfg, int sn_order, int l_max,
                         int nm_cap)
    : problem_(&problem), cfg_(cfg), sn_order_(sn_order), l_max_(l_max) {
  cfg_.sweep.kernel = cfg_.kernel;
  std::optional<sweep::SnQuadrature> own;
  const sweep::SnQuadrature& quad = quadrature(own);
  cfg_.sweep.validate(problem.grid().kt, quad.angles_per_octant());
  nm_ = sweep::MomentTable(quad, l_max_, nm_cap).nm();
  nm_cap_ = nm_cap;
}

RunReport CellSweep3D::run(RunMode mode) {
  return cfg_.use_spes ? run_on_spes(mode) : run_on_ppe(mode);
}

template <typename Real>
void CellSweep3D::run_functional(RunReport& report,
                                 const sweep::DiagonalObserver& obs) {
  std::optional<sweep::SnQuadrature> own;
  const sweep::SnQuadrature& quad = quadrature(own);
  sweep::SweepState<Real> state(*problem_, quad, l_max_, nm_cap_);
  report.solve = sweep::solve_source_iteration(state, cfg_.sweep, obs);
  report.absorption = state.absorption_rate();
  report.leakage = state.leakage();
}

RunReport CellSweep3D::run_on_ppe(RunMode mode) {
  std::optional<sweep::SnQuadrature> own;
  const sweep::SnQuadrature& quad = quadrature(own);
  const int nm = nm_;
  const WorkloadTotals totals =
      audit_workload(problem_->grid(), quad.angles_per_octant(), cfg_, nm);

  const perf::ProcessorModel ppe =
      cfg_.xlc ? perf::ppe_xlc() : perf::ppe_gcc();
  RunReport r;
  r.seconds = ppe.seconds(totals.cell_solves, totals.flops);
  r.flops = totals.flops;
  r.cell_solves = totals.cell_solves;
  r.chunks = totals.chunks;
  r.traffic_bytes =
      static_cast<double>(totals.cell_solves) * ppe.bytes_per_solve;
  r.achieved_flops_per_s = static_cast<double>(r.flops) / r.seconds;
  r.grind_seconds = r.seconds / static_cast<double>(r.cell_solves);

  if (mode == RunMode::kFunctional) {
    // The PPE stages always compute in double precision (the original
    // unported code).
    run_functional<double>(r, {});
  }
  return r;
}

RunReport CellSweep3D::run_on_spes(RunMode mode) {
  std::optional<sweep::SnQuadrature> own;
  const sweep::SnQuadrature& quad = quadrature(own);
  const int nm = nm_;
  TimingEngine engine(cfg_, problem_->grid(), nm);
  const sweep::DiagonalObserver obs = [&](const sweep::DiagonalWork& w) {
    engine.on_diagonal(w);
  };

  RunReport functional_part;
  if (mode == RunMode::kFunctional) {
    if (cfg_.precision == Precision::kDouble)
      run_functional<double>(functional_part, obs);
    else
      run_functional<float>(functional_part, obs);
  } else {
    for (int iter = 0; iter < cfg_.sweep.max_iterations; ++iter) {
      const bool fixup = iter >= cfg_.sweep.fixup_from_iteration;
      enumerate_sweep(problem_->grid(), quad.angles_per_octant(), cfg_.sweep,
                      fixup, obs);
    }
  }

  RunReport r = engine.finish();
  r.solve = functional_part.solve;
  r.absorption = functional_part.absorption;
  r.leakage = functional_part.leakage;
  return r;
}

}  // namespace cellsweep::core
