// Tests for region tallies, field output and accelerated iteration.
#include <gtest/gtest.h>

#include <sstream>

#include "sweep/output.h"
#include "sweep/problem.h"
#include "sweep/quadrature.h"
#include "sweep/sweeper.h"
#include "sweep/tally.h"

namespace cellsweep::sweep {
namespace {

SweepConfig cfg(int mk, int iters, double eps = 0.0, bool accel = false) {
  SweepConfig c;
  c.mk = mk;
  c.mmi = 3;
  c.max_iterations = iters;
  c.epsilon = eps;
  c.fixup_from_iteration = 9999;
  c.accelerate = accel;
  return c;
}

class TallyTest : public ::testing::Test {
 protected:
  TallyTest()
      : problem_(Problem::benchmark_cube(8)),
        quad_(6),
        state_(problem_, quad_, 2, kBenchmarkMoments) {
    solve_source_iteration(state_, cfg(4, 6));
  }
  Problem problem_;
  SnQuadrature quad_;
  SweepState<double> state_;
};

TEST_F(TallyTest, WholeDomainBoxMatchesGlobals) {
  TallySet tallies;
  tallies.add_box("all", 0, 8, 0, 8, 0, 8);
  const auto r = tallies.compute(problem_, state_.flux());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].cells, 512);
  EXPECT_NEAR(r[0].volume, 512 * problem_.grid().cell_volume(), 1e-12);
  EXPECT_NEAR(r[0].absorption_rate, state_.absorption_rate(), 1e-10);
  EXPECT_NEAR(r[0].source_rate, problem_.total_external_source(), 1e-10);
  EXPECT_GE(r[0].peak_flux, r[0].mean_flux);
  EXPECT_LE(r[0].min_flux, r[0].mean_flux);
}

TEST_F(TallyTest, DisjointBoxesPartitionTheDomain) {
  TallySet tallies;
  tallies.add_box("west-half", 0, 4, 0, 8, 0, 8);
  tallies.add_box("east-half", 4, 8, 0, 8, 0, 8);
  const auto r = tallies.compute(problem_, state_.flux());
  EXPECT_NEAR(r[0].absorption_rate + r[1].absorption_rate,
              state_.absorption_rate(), 1e-10);
  // Symmetric problem: the two halves agree.
  EXPECT_NEAR(r[0].mean_flux, r[1].mean_flux, 1e-9);
}

TEST_F(TallyTest, MaterialRegionOnShield) {
  const Problem shield = Problem::shield(12);
  SweepState<double> s(shield, quad_, 2, kBenchmarkMoments);
  SweepConfig c = cfg(4, 8);
  c.fixup_from_iteration = 0;
  solve_source_iteration(s, c);
  TallySet tallies;
  tallies.add_material("source-region", 0);
  tallies.add_material("shield-slab", 2);
  const auto r = tallies.compute(shield, s.flux());
  EXPECT_GT(r[0].cells, 0);
  EXPECT_GT(r[1].cells, 0);
  EXPECT_GT(r[0].source_rate, 0.0);
  EXPECT_DOUBLE_EQ(r[1].source_rate, 0.0);
  // The slab absorbs hard and sees far less flux than the source zone.
  EXPECT_GT(r[0].mean_flux, r[1].mean_flux);
}

TEST_F(TallyTest, Validation) {
  TallySet tallies;
  EXPECT_THROW(tallies.add_box("empty", 2, 2, 0, 4, 0, 4),
               std::invalid_argument);
  tallies.add_box("oob", 0, 99, 0, 4, 0, 4);
  EXPECT_THROW(tallies.compute(problem_, state_.flux()), std::out_of_range);
}

TEST_F(TallyTest, VtkOutputStructure) {
  std::ostringstream os;
  write_vtk(os, problem_, state_.flux(), "test flux");
  const std::string vtk = os.str();
  EXPECT_NE(vtk.find("# vtk DataFile"), std::string::npos);
  EXPECT_NE(vtk.find("DIMENSIONS 9 9 9"), std::string::npos);
  EXPECT_NE(vtk.find("CELL_DATA 512"), std::string::npos);
  EXPECT_NE(vtk.find("SCALARS scalar_flux double 1"), std::string::npos);
  EXPECT_NE(vtk.find("SCALARS material int 1"), std::string::npos);
  // 512 flux values + 512 material values + headers.
  int lines = 0;
  for (char ch : vtk)
    if (ch == '\n') ++lines;
  EXPECT_GE(lines, 2 * 512 + 10);
}

TEST_F(TallyTest, LineCsv) {
  std::ostringstream os;
  write_line_csv(os, problem_, state_.flux(), 3, 3);
  std::istringstream in(os.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "i,x,material,flux");
  int rows = 0;
  std::string row;
  while (std::getline(in, row)) ++rows;
  EXPECT_EQ(rows, 8);
  EXPECT_THROW(write_line_csv(os, problem_, state_.flux(), 99, 0),
               std::out_of_range);
}

TEST(Acceleration, FewerIterationsOnStronglyScattering) {
  // c = 0.96: plain source iteration crawls; error-mode extrapolation
  // cuts the iteration count by at least 2x for the same answer.
  Grid g = Grid::cube(6);
  Material m{"mod", 2.0, {1.92}, 1.0};
  const Problem p(g, {m}, std::vector<std::uint8_t>(g.cells(), 0));
  SnQuadrature quad(6);

  SweepState<double> plain(p, quad, 2, kBenchmarkMoments);
  const SolveResult rp =
      solve_source_iteration(plain, cfg(3, 2000, 1e-9, false));
  ASSERT_TRUE(rp.converged);

  SweepState<double> accel(p, quad, 2, kBenchmarkMoments);
  const SolveResult ra =
      solve_source_iteration(accel, cfg(3, 2000, 1e-9, true));
  ASSERT_TRUE(ra.converged);

  EXPECT_LT(ra.iterations * 2, rp.iterations);
  EXPECT_NEAR(MomentField<double>::max_abs_diff_moment0(plain.flux(),
                                                        accel.flux()),
              0.0, 1e-6);
}

TEST(Acceleration, HarmlessOnWeaklyScattering) {
  const Problem p = Problem::benchmark_cube(6);
  SnQuadrature quad(6);
  SweepState<double> plain(p, quad, 2, kBenchmarkMoments);
  SweepState<double> accel(p, quad, 2, kBenchmarkMoments);
  const SolveResult rp =
      solve_source_iteration(plain, cfg(3, 500, 1e-10, false));
  const SolveResult ra =
      solve_source_iteration(accel, cfg(3, 500, 1e-10, true));
  ASSERT_TRUE(rp.converged);
  ASSERT_TRUE(ra.converged);
  EXPECT_LE(ra.iterations, rp.iterations + 2);
  EXPECT_NEAR(MomentField<double>::max_abs_diff_moment0(plain.flux(),
                                                        accel.flux()),
              0.0, 1e-8);
}

TEST(Acceleration, ExactInfiniteMediumStillExact) {
  const Problem p = Problem::infinite_medium(4, 1.0, 0.9, 1.0);
  SnQuadrature quad(6);
  SweepState<double> s(p, quad, 2, kBenchmarkMoments);
  const SolveResult r = solve_source_iteration(s, cfg(2, 2000, 1e-11, true));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(s.flux().at(0, 1, 2, 3), 10.0, 1e-6);  // q/sigma_a = 1/0.1
}

}  // namespace
}  // namespace cellsweep::sweep
