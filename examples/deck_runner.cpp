// Deck runner: the classic Sweep3D workflow -- point the binary at an
// input deck, get the solve and the simulated Cell performance report.
// --workload=stencil swaps the input grammar and runner for the
// red-black stencil workload on the same machine model.
//
//   $ ./deck_runner examples/decks/benchmark50.deck
//   $ ./deck_runner examples/decks/shield_reflected.deck --stage=simd
//   $ ./deck_runner examples/decks/benchmark50.deck --trace trace.json \
//         --metrics metrics.json     # chrome://tracing + JSON metrics
//   $ ./deck_runner examples/decks/benchmark50.deck --check   # hazard check
//   $ ./deck_runner lint examples/decks/*.deck                # static lint
//   $ ./deck_runner --workload=stencil examples/decks/heat32.stencil
//   $ ./deck_runner --workload=stencil lint examples/decks/*.stencil
//   $ ./deck_runner serve --tenants=2 a.deck b.deck heat32.stencil
//   $ ./deck_runner serve --metrics-out=prom.txt --metrics-interval=200 \
//         --trace jobs.json --metrics server.json \
//         --flight-recorder=flightrec a.deck b.deck   # server telemetry
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "analysis/diagnostics.h"
#include "analysis/hazard.h"
#include "analysis/lint.h"
#include "core/arrival.h"
#include "core/job_trace.h"
#include "core/metrics.h"
#include "core/metrics_registry.h"
#include "core/orchestrator.h"
#include "server/arrival_driver.h"
#include "server/solve_server.h"
#include "sim/counters.h"
#include "sim/trace.h"
#include "sweep/deck.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/units.h"
#include "workloads/stencil/stencil.h"

using namespace cellsweep;

namespace {

core::OptimizationStage stage_from_name(const std::string& name) {
  if (name == "ppe") return core::OptimizationStage::kPpeXlc;
  if (name == "initial") return core::OptimizationStage::kSpeInitial;
  if (name == "simd") return core::OptimizationStage::kSpeSimd;
  return core::OptimizationStage::kSpeLsPoke;
}

/// `deck_runner [--workload=...] lint <file>...`: statically validate
/// inputs (chunk/block shape vs. LS budget, grammar consistency, DMA
/// legality) without running any simulation. Exit code is the number
/// of failing files.
int run_lint(const std::vector<std::string>& paths,
             core::OptimizationStage stage, const std::string& workload) {
  int failed = 0;
  for (const std::string& path : paths) {
    try {
      core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
      analysis::Diagnostics diags;
      std::string source = path;
      if (workload == "stencil") {
        const stencil::StencilSpec spec = stencil::load_spec(path);
        source = spec.origin;
        diags = analysis::lint_stencil(spec, cfg);
      } else {
        const sweep::Deck deck = sweep::load_deck(path);
        source = deck.source;
        cfg.sweep = deck.sweep;
        diags = analysis::lint_deck(deck, cfg);
      }
      for (const analysis::Diagnostic& d : diags.entries())
        std::cerr << source << ": " << d.to_string() << "\n";
      if (diags.has_errors()) {
        ++failed;
      } else {
        std::cout << source << ": ok\n";
      }
    } catch (const sweep::DeckError& e) {
      std::cerr << path << ": error[parse]: " << e.what() << "\n";
      ++failed;
    } catch (const stencil::StencilError& e) {
      std::cerr << path << ": error[parse]: " << e.what() << "\n";
      ++failed;
    }
  }
  return failed;
}

/// The machine-side report both workloads share: headline timing, the
/// per-SPE stall breakdown, fault accounting, counter summary, and the
/// trace/metrics file outputs. Returns a process exit code.
int emit_report(const core::RunReport& rep, core::OptimizationStage stage,
                std::size_t profile_windows, const std::string& trace_path,
                const std::string& metrics_path,
                sim::ChromeTraceWriter& writer) {
  std::cout << "Cell (" << core::stage_name(stage)
            << "): " << util::format_seconds(rep.seconds) << ", "
            << util::format_bytes(rep.traffic_bytes) << " traffic, grind "
            << util::format_seconds(rep.grind_seconds) << "/solve, "
            << util::format_flops(rep.achieved_flops_per_s) << "\n";

  // Per-SPE stall breakdown: where the simulated time went.
  if (!rep.spe_stalls.empty()) {
    util::TextTable table(
        {"SPE", "busy [s]", "DMA wait [s]", "sync wait [s]", "idle [s]"});
    char buf[32];
    auto f = [&](double v) {
      std::snprintf(buf, sizeof buf, "%.3f", v);
      return std::string(buf);
    };
    for (std::size_t s = 0; s < rep.spe_stalls.size(); ++s) {
      const core::SpeStallSummary& st = rep.spe_stalls[s];
      table.add_row({"SPE" + std::to_string(s), f(st.busy_s),
                     f(st.dma_wait_s), f(st.sync_wait_s), f(st.idle_s)});
    }
    table.print(std::cout);
    std::cout << "MIC utilization " << util::format_percent(rep.mic_utilization)
              << ", EIB utilization "
              << util::format_percent(rep.eib_utilization) << "\n";
  }

  // --faults: what the injector actually did to this run.
  if (rep.faults.enabled) {
    std::cout << "Faults: " << rep.faults.spes_disabled
              << " SPE(s) disabled, " << rep.faults.spes_failed
              << " failed mid-sweep, " << rep.faults.redispatched_chunks
              << " chunk(s) re-dispatched; " << rep.faults.dma_retries
              << " DMA retries, " << rep.faults.tag_timeouts
              << " tag timeouts, " << rep.faults.dropped_messages
              << " dropped messages, " << rep.faults.mic_throttled
              << " throttled MIC requests\n";
  }

  // --counters: the aggregate hardware-counter summary plus the profile
  // shape. The full tree is in --metrics output.
  if (profile_windows != 0) {
    const sim::CounterSet* tot = rep.counters.find_child("spe_total");
    const sim::CounterSet* pipe = tot ? tot->find_child("pipeline") : nullptr;
    const sim::CounterSet* mfc = tot ? tot->find_child("mfc") : nullptr;
    if (pipe != nullptr) {
      const double issue = pipe->value("issue_cycles");
      std::cout << "SPU pipeline: "
                << static_cast<std::uint64_t>(pipe->value("instructions"))
                << " instructions, "
                << util::format_percent(pipe->value("dual_issues") /
                                        (issue > 0 ? issue : 1.0))
                << " dual-issue, "
                << static_cast<std::uint64_t>(pipe->value("flops"))
                << " flops\n";
    }
    if (mfc != nullptr) {
      std::cout << "MFC: "
                << static_cast<std::uint64_t>(mfc->value("commands"))
                << " commands ("
                << static_cast<std::uint64_t>(mfc->value("get_commands"))
                << " get / "
                << static_cast<std::uint64_t>(mfc->value("put_commands"))
                << " put / "
                << static_cast<std::uint64_t>(mfc->value("list_commands"))
                << " list), queue-full "
                << util::format_seconds(sim::seconds_from_ticks(
                       static_cast<sim::Tick>(mfc->value("queue_full_ticks"))))
                << "\n";
    }
    std::cout << "Profile: " << rep.timeseries.window_count()
              << " windows of "
              << util::format_seconds(
                     sim::seconds_from_ticks(rep.timeseries.window_ticks))
              << "\n";
  }

  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::cerr << "deck_runner: cannot write trace file " << trace_path
                << "\n";
      return 1;
    }
    writer.write(os);
    std::cout << "Trace: " << writer.event_count() << " events on "
              << writer.track_count() << " tracks -> " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::cerr << "deck_runner: cannot write metrics file " << metrics_path
                << "\n";
      return 1;
    }
    core::write_metrics_json(os, rep);
    std::cout << "Metrics -> " << metrics_path << "\n";
  }
  return 0;
}

/// `deck_runner serve [flags] <file>...`: run every input through one
/// multi-tenant core::SolveServer. Files ending in ".stencil" become
/// stencil jobs, everything else a sweep deck. Exit code is the number
/// of rejected plus failed jobs.
int run_serve(const util::CliParser& cli, core::OptimizationStage stage) {
  const std::vector<std::string> paths(cli.positional().begin() + 1,
                                       cli.positional().end());
  if (paths.empty()) {
    std::cerr << "deck_runner serve: no input files given\n";
    return 1;
  }

  core::ServerConfig scfg;
  scfg.stage = stage;
  std::string metrics_out, metrics_path, trace_path, faults_arg;
  std::string arrivals_arg, weights_arg, quotas_arg;
  double arrival_time_scale = 0.0;
  long interval_ms = 0;
  try {
    scfg.tenants = static_cast<int>(cli.get_int("tenants"));
    scfg.queue_limit = static_cast<std::size_t>(
        std::max(1L, cli.get_int("queue")));
    scfg.ls_budget_bytes =
        static_cast<std::size_t>(std::max(0L, cli.get_int("ls-budget")));
    scfg.grid_cell_budget = cli.get_int("grid-budget");
    scfg.host_threads = static_cast<int>(cli.get_int("threads"));
    scfg.flight_recorder_path = cli.get_string("flight-recorder");
    metrics_out = cli.get_string("metrics-out");
    interval_ms = std::max(0L, cli.get_int("metrics-interval"));
    metrics_path = cli.get_string("metrics");
    trace_path = cli.get_string("trace");
    faults_arg = cli.get_string("faults");
    arrivals_arg = cli.get_string("arrivals");
    arrival_time_scale = cli.get_double("arrival-time-scale");
    weights_arg = cli.get_string("weights");
    quotas_arg = cli.get_string("quotas");
  } catch (const util::CliError& e) {
    std::cerr << "deck_runner serve: " << e.what() << "\n";
    return 1;
  }
  if (!faults_arg.empty()) {
    try {
      scfg.faults = sim::parse_fault_spec(faults_arg);
    } catch (const sim::FaultSpecError& e) {
      std::cerr << "deck_runner serve: --faults: " << e.what() << "\n";
      return 1;
    }
  }
  // --weights / --quotas: comma-separated per-tenant QoS knobs, indexed
  // by tenant worker id (see ServerConfig).
  const auto parse_int_list = [](const std::string& flag,
                                 const std::string& text,
                                 std::vector<int>& out) {
    std::size_t from = 0;
    while (from <= text.size()) {
      const std::size_t at = text.find(',', from);
      const std::string tok =
          text.substr(from, at == std::string::npos ? at : at - from);
      try {
        std::size_t used = 0;
        const int v = std::stoi(tok, &used);
        if (used != tok.size()) throw std::invalid_argument(tok);
        out.push_back(v);
      } catch (const std::exception&) {
        std::cerr << "deck_runner serve: --" << flag << ": '" << tok
                  << "' is not an integer\n";
        return false;
      }
      if (at == std::string::npos) break;
      from = at + 1;
    }
    return true;
  };
  if (!weights_arg.empty() &&
      !parse_int_list("weights", weights_arg, scfg.tenant_weights))
    return 1;
  if (!quotas_arg.empty() &&
      !parse_int_list("quotas", quotas_arg, scfg.tenant_quotas))
    return 1;
  core::ArrivalPlan arrival_plan;
  if (!arrivals_arg.empty()) {
    try {
      arrival_plan = core::ArrivalPlan(core::parse_arrival_spec(arrivals_arg));
    } catch (const core::ArrivalSpecError& e) {
      std::cerr << "deck_runner serve: --arrivals: " << e.what() << "\n";
      return 1;
    }
  }
  const core::RunMode mode = cli.get_bool("functional")
                                 ? core::RunMode::kFunctional
                                 : core::RunMode::kTraceDriven;

  core::SolveServer server(scfg);
  std::cout << "Serving " << paths.size() << " job(s) on " << scfg.tenants
            << " tenant(s), stage " << core::stage_name(stage) << "\n";

  // --metrics-out: Prometheus text exposition snapshots. With a
  // positive --metrics-interval a poller thread overwrites the file
  // every interval while jobs run; the final snapshot is always
  // written after the drain either way.
  const auto write_exposition = [&server, &metrics_out] {
    if (metrics_out.empty()) return;
    std::ofstream os(metrics_out);
    if (os) core::write_prometheus(os, server.metrics_snapshot());
  };
  std::atomic<bool> poll_stop{false};
  std::thread poller;
  if (!metrics_out.empty() && interval_ms > 0) {
    poller = std::thread([&] {
      while (!poll_stop.load(std::memory_order_relaxed)) {
        write_exposition();
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
    });
  }

  // Load every input up front; the arrivals replay reuses them in a
  // cycle, the default path submits each exactly once.
  struct Input {
    std::string path;
    core::JobKind kind = core::JobKind::kSweep;
    std::string text;
    bool ok = false;
  };
  std::vector<Input> inputs;
  int rejected = 0;
  for (const std::string& path : paths) {
    Input in;
    in.path = path;
    in.kind = path.size() >= 8 &&
                      path.compare(path.size() - 8, 8, ".stencil") == 0
                  ? core::JobKind::kStencil
                  : core::JobKind::kSweep;
    std::ifstream is(path);
    if (is) {
      std::ostringstream text;
      text << is.rdbuf();
      in.text = text.str();
      in.ok = true;
    } else {
      std::cerr << path << ": error[io]: cannot open file\n";
      ++rejected;
    }
    inputs.push_back(std::move(in));
  }

  if (arrival_plan.enabled()) {
    // Open-system mode: replay the seeded arrival schedule, cycling
    // through the (readable) input files. --arrival-time-scale
    // stretches the schedule onto the wall clock; 0 replays flat-out
    // (deterministic submission order either way -- the plan's).
    std::vector<const Input*> usable;
    for (const Input& in : inputs)
      if (in.ok) usable.push_back(&in);
    if (usable.empty()) {
      std::cerr << "deck_runner serve: --arrivals needs at least one "
                   "readable input file\n";
      return 1;
    }
    core::ArrivalDriver driver(
        server, arrival_plan,
        [&usable, mode](const core::Arrival& a, std::uint64_t k) {
          const Input& in = *usable[static_cast<std::size_t>(k) %
                                    usable.size()];
          core::JobRequest req;
          req.kind = in.kind;
          req.text = in.text;
          req.mode = mode;
          req.name = in.path + "#" + std::to_string(k) + "-t" +
                     std::to_string(a.tenant);
          return req;
        },
        arrival_time_scale);
    std::cout << "Replaying " << arrival_plan.total()
              << " arrival(s) over " << usable.size() << " input file(s)\n";
    driver.start();
    driver.join();
    const core::ArrivalDriver::Stats ds = driver.stats();
    rejected += static_cast<int>(ds.rejected);
    if (ds.rejected > 0)
      std::cerr << ds.rejected << " arrival(s) rejected at admission "
                << "(open-system loss)\n";
  } else {
    for (const Input& in : inputs) {
      if (!in.ok) continue;
      core::JobRequest req;
      req.name = in.path;
      req.mode = mode;
      req.kind = in.kind;
      req.text = in.text;
      try {
        server.submit(req);
      } catch (const core::AdmissionError& e) {
        std::cerr << in.path << ": rejected["
                  << core::admission_reason_name(e.reason()) << "]: "
                  << e.what() << "\n";
        ++rejected;
      }
    }
  }

  int failed = 0;
  for (const core::JobResult& r : server.drain()) {
    if (!r.ok) {
      ++failed;
      std::cerr << r.name << " (" << core::job_kind_name(r.kind)
                << "): error: " << r.error << "\n";
      continue;
    }
    std::cout << r.name << " (" << core::job_kind_name(r.kind)
              << "): " << util::format_seconds(r.report.seconds) << ", "
              << util::format_bytes(r.report.traffic_bytes) << " traffic, "
              << util::format_flops(r.report.achieved_flops_per_s)
              << (r.plan_cache_hit ? ", plan cache hit" : "") << "\n";
    if (r.kind == core::JobKind::kStencil &&
        mode == core::RunMode::kFunctional) {
      std::cout << "  checksum " << r.checksum << ", residual " << r.residual
                << "\n";
    }
  }

  if (poller.joinable()) {
    poll_stop.store(true, std::memory_order_relaxed);
    poller.join();
  }
  write_exposition();
  if (!metrics_out.empty())
    std::cout << "Prometheus exposition -> " << metrics_out << "\n";

  // --trace in serve mode: the host-time job-lifecycle timeline
  // (admission + per-tenant tracks), not a simulated-machine trace.
  if (!trace_path.empty()) {
    sim::ChromeTraceWriter writer;
    core::write_job_trace_events(writer, server.traced_jobs());
    std::ofstream os(trace_path);
    if (!os) {
      std::cerr << "deck_runner serve: cannot write trace file " << trace_path
                << "\n";
      return 1;
    }
    writer.write(os);
    std::cout << "Job trace: " << writer.event_count() << " events on "
              << writer.track_count() << " tracks -> " << trace_path << "\n";
  }

  // --metrics in serve mode: the server telemetry document (schema v4
  // with the "server" section populated).
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::cerr << "deck_runner serve: cannot write metrics file "
                << metrics_path << "\n";
      return 1;
    }
    core::write_server_metrics_json(os, server);
    std::cout << "Server metrics -> " << metrics_path << "\n";
  }

  const core::SolveServer::Stats st = server.stats();
  const core::PlanCache::Stats pc = server.plan_cache_stats();
  const core::SpeAllocator::Stats al = server.allocator_stats();
  std::cout << "Server: " << st.submitted << " submitted, " << st.completed
            << " completed, " << st.failed << " failed, " << st.rejected
            << " rejected\n"
            << "Plan cache: " << pc.hits << " hit(s), " << pc.misses
            << " miss(es), " << pc.evictions << " eviction(s), "
            << pc.entries << " plan(s)\n"
            << "SPE allocator: " << al.claims << " claim(s), " << al.expands
            << " expand(s), " << al.shrinks << " shrink(s), "
            << al.waited_claims << " waited, peak " << al.peak_tenants
            << " tenant(s)\n";

  // Per-tenant latency summary from the metrics registry.
  {
    const core::MetricsRegistry::Snapshot snap = server.metrics_snapshot();
    const auto hist_pct = [&snap](const char* fam, const std::string& label,
                                  double p) {
      const core::MetricsRegistry::Family* f = snap.find(fam);
      const core::MetricsRegistry::Entry* e = f ? f->find(label) : nullptr;
      return e ? e->hist.percentile(p) : std::nan("");
    };
    const auto counter = [&snap](const char* fam, const std::string& label) {
      const core::MetricsRegistry::Family* f = snap.find(fam);
      const core::MetricsRegistry::Entry* e = f ? f->find(label) : nullptr;
      return e ? e->value : 0.0;
    };
    const auto sec = [](double v) {
      if (!std::isfinite(v)) return std::string("-");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f", v);
      return std::string(buf);
    };
    util::TextTable table({"tenant", "done", "failed", "queue p50 [s]",
                           "queue p99 [s]", "service p50 [s]",
                           "service p95 [s]", "service p99 [s]"});
    for (int t = 0; t < scfg.tenants; ++t) {
      const std::string label = "tenant=\"" + std::to_string(t) + "\"";
      table.add_row(
          {"tenant-" + std::to_string(t),
           std::to_string(static_cast<long long>(
               counter("cellsweep_jobs_completed_total", label))),
           std::to_string(static_cast<long long>(
               counter("cellsweep_jobs_failed_total", label))),
           sec(hist_pct("cellsweep_queue_wait_seconds", label, 0.50)),
           sec(hist_pct("cellsweep_queue_wait_seconds", label, 0.99)),
           sec(hist_pct("cellsweep_service_seconds", label, 0.50)),
           sec(hist_pct("cellsweep_service_seconds", label, 0.95)),
           sec(hist_pct("cellsweep_service_seconds", label, 0.99))});
    }
    table.print(std::cout);
  }
  return rejected + failed;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Run a CellSweep input deck");
  cli.add_flag("workload", "sweep",
               "input workload: sweep (Sweep3D decks) | stencil "
               "(red-black stencil specs)");
  cli.add_flag("stage", "final",
               "optimization stage: ppe | initial | simd | final");
  cli.add_flag("check", "false",
               "attach the machine-model hazard checker; protocol "
               "violations become hard errors");
  cli.add_flag("functional", "true",
               "solve the physics (false: timing only)");
  cli.add_flag("threads", "1",
               "host threads for the functional solve (results are "
               "bitwise identical for any value)");
  cli.add_flag("trace", "",
               "write a Chrome trace-event JSON of the simulated run "
               "(load in chrome://tracing or ui.perfetto.dev); in serve "
               "mode: the host-time job-lifecycle timeline instead");
  cli.add_flag("metrics", "",
               "write run metrics (timing, stall breakdown, DMA "
               "histograms) as JSON; in serve mode: the server "
               "telemetry document");
  cli.add_flag("counters", "false",
               "attach the time-sliced profiler and print a hardware "
               "counter summary; --counters=N sets the profile window "
               "count (default 96). Counters and the utilization "
               "timeseries also land in --metrics and --trace output");
  cli.add_flag("tenants", "2",
               "serve: concurrent tenant workers sharing the chip");
  cli.add_flag("queue", "64",
               "serve: pending jobs admitted before submit rejects");
  cli.add_flag("ls-budget", "0",
               "serve: admission budget on the per-SPE simulated-LS "
               "footprint in bytes (0 = linter capacity check only)");
  cli.add_flag("grid-budget", "0",
               "serve: admission budget on grid cells (0 = unlimited)");
  cli.add_flag("metrics-out", "",
               "serve: write Prometheus text-exposition snapshots of the "
               "server metrics to this file");
  cli.add_flag("metrics-interval", "0",
               "serve: overwrite --metrics-out every N milliseconds while "
               "jobs run (0 = final snapshot only)");
  cli.add_flag("flight-recorder", "",
               "serve: dump the event ring to <prefix>-<ms>-<n>.json on "
               "job failure, queue-full or fault failover");
  cli.add_flag("faults", "",
               "seeded fault injection, e.g. "
               "--faults=seed=42,dma=0.001,spe=7:down (keys: seed, dma, "
               "timeout, drop, throttle, retries, spe). The run degrades "
               "gracefully and reports the cost; same seed => identical "
               "schedule");
  cli.add_flag("arrivals", "",
               "serve: replay a seeded open-system arrival schedule "
               "instead of submitting each input once, cycling through "
               "the input files, e.g. --arrivals=seed=42,tenant=0:rate:"
               "8:24,tenant=1:burst:6 (kinds: rate | burst | trace; same "
               "seed => identical schedule)");
  cli.add_flag("arrival-time-scale", "0",
               "serve: seconds of wall clock per scheduled second of "
               "--arrivals (0 = replay flat-out)");
  cli.add_flag("weights", "",
               "serve: comma-separated per-tenant QoS weights (fair SPE "
               "share scales with weight; running lower-weight jobs "
               "yield at chunk granularity). Empty = all equal");
  cli.add_flag("quotas", "",
               "serve: comma-separated per-tenant SPE caps (<= 0 = "
               "uncapped)");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  if (cli.help_requested() || cli.positional().empty()) {
    std::cout << cli.usage(argv[0]) << "\nUsage: " << argv[0]
              << " <deck file> [flags]\n       " << argv[0]
              << " lint <deck file>...\n       " << argv[0]
              << " serve <deck/spec file>... [--tenants=N]\n       "
              << argv[0] << " --workload=stencil <spec file> [flags]\n";
    return cli.help_requested() ? 0 : 1;
  }

  const std::string workload = [&] {
    try {
      const std::string w = cli.get_string("workload");
      if (w != "sweep" && w != "stencil")
        throw util::CliError("unknown workload '" + w +
                             "' (valid: sweep, stencil)");
      return w;
    } catch (const util::CliError& e) {
      std::cerr << "deck_runner: " << e.what() << "\n";
      std::exit(1);
    }
  }();

  const core::OptimizationStage stage =
      stage_from_name(cli.get_string("stage"));

  if (cli.positional()[0] == "lint") {
    std::vector<std::string> paths(cli.positional().begin() + 1,
                                   cli.positional().end());
    if (paths.empty()) {
      std::cerr << "deck_runner lint: no input files given\n";
      return 1;
    }
    return run_lint(paths, stage, workload);
  }

  if (cli.positional()[0] == "serve") return run_serve(cli, stage);

  std::string trace_path, metrics_path, counters_arg, faults_arg;
  int threads = 1;
  try {
    threads = static_cast<int>(cli.get_int("threads"));
    trace_path = cli.get_string("trace");
    metrics_path = cli.get_string("metrics");
    counters_arg = cli.get_string("counters");
    faults_arg = cli.get_string("faults");
  } catch (const util::CliError& e) {
    std::cerr << "deck_runner: " << e.what() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  if (threads < 1) {
    std::cerr << "deck_runner: --threads must be a positive integer\n";
    return 1;
  }
  std::size_t profile_windows = 0;  // 0: profiler off
  if (counters_arg != "false") {
    if (counters_arg == "true") {
      profile_windows = 96;
    } else {
      char* rest = nullptr;
      const unsigned long n = std::strtoul(counters_arg.c_str(), &rest, 10);
      if (rest == nullptr || *rest != '\0' || n < 2) {
        std::cerr << "deck_runner: --counters wants a window count >= 2, "
                     "got '" << counters_arg << "'\n";
        return 1;
      }
      profile_windows = static_cast<std::size_t>(n);
    }
  }

  // The profiler outlives the writer's final write() below: the counter
  // events it emits reference its track names by pointer.
  sim::TimeSlicedProfiler profiler(profile_windows == 0 ? 96
                                                        : profile_windows);
  sim::ChromeTraceWriter writer;
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
  if (!trace_path.empty()) cfg.trace_sink = &writer;
  if (profile_windows != 0) cfg.profiler = &profiler;
  if (!faults_arg.empty()) {
    try {
      cfg.faults = sim::parse_fault_spec(faults_arg);
    } catch (const sim::FaultSpecError& e) {
      std::cerr << "deck_runner: --faults: " << e.what() << "\n";
      return 1;
    }
  }
  const bool check = cli.get_bool("check");
  analysis::Diagnostics diags;
  analysis::HazardChecker checker(&diags, cfg.chip);

  if (workload == "stencil") {
    const stencil::StencilSpec spec = [&] {
      try {
        return stencil::load_spec(cli.positional()[0]);
      } catch (const stencil::StencilError& e) {
        std::cerr << e.what() << "\n";
        std::exit(1);
      }
    }();
    std::cout << "Stencil: " << spec.nx << "x" << spec.ny << "x" << spec.nz
              << ", blocks " << spec.bx << "x" << spec.by << "x" << spec.bz
              << " (" << spec.blocks() << "), " << spec.iterations
              << " iteration(s)\n";

    // --check: lint the spec, then observe the run with the hazard
    // checker; any finding is a hard error.
    if (check) {
      const analysis::Diagnostics lint = analysis::lint_stencil(spec, cfg);
      for (const analysis::Diagnostic& d : lint.entries())
        std::cerr << spec.origin << ": " << d.to_string() << "\n";
      if (lint.has_errors()) return 1;
      cfg.hazard = &checker;
    }

    stencil::CellStencil runner(spec, cfg);
    const core::RunMode mode = cli.get_bool("functional")
                                   ? core::RunMode::kFunctional
                                   : core::RunMode::kTraceDriven;
    const stencil::StencilReport rep = [&] {
      try {
        return runner.run(mode, threads);
      } catch (const sim::FaultError& e) {
        std::cerr << "deck_runner: " << e.what() << "\n";
        std::exit(1);
      }
    }();
    if (mode == core::RunMode::kFunctional) {
      std::cout << "Solve: " << rep.updates << " updates, checksum "
                << rep.checksum << ", residual " << rep.residual << "\n";
    }
    if (check) {
      for (const analysis::Diagnostic& d : diags.entries())
        std::cerr << spec.origin << ": " << d.to_string() << "\n";
      if (diags.has_errors()) {
        std::cerr << "deck_runner: hazard check failed with "
                  << diags.error_count() << " error(s)\n";
        return 1;
      }
      std::cout << "Hazard check: clean\n";
    }
    return emit_report(rep.run, stage, profile_windows, trace_path,
                       metrics_path, writer);
  }

  sweep::Deck deck = [&] {
    try {
      return sweep::load_deck(cli.positional()[0]);
    } catch (const sweep::DeckError& e) {
      std::cerr << e.what() << "\n";
      std::exit(1);
    }
  }();

  const auto& g = deck.problem.grid();
  std::cout << "Deck: " << g.it << "x" << g.jt << "x" << g.kt << ", "
            << deck.problem.materials().size() << " material(s), S"
            << deck.sn_order << ", " << deck.nm_cap << " moments, MK="
            << deck.sweep.mk << " MMI=" << deck.sweep.mmi << "\n";

  deck.sweep.threads = threads;

  if (deck.problem.any_reflective() || cli.get_bool("functional")) {
    // Reflective decks need the functional solver for physics.
    sweep::SnQuadrature quad(deck.sn_order);
    sweep::SweepState<double> state(deck.problem, quad, 2, deck.nm_cap);
    const sweep::SolveResult r =
        sweep::solve_source_iteration(state, deck.sweep);
    std::cout << "Solve: " << r.iterations << " iterations, change "
              << r.final_change << (r.converged ? " (converged)" : "")
              << "; absorption " << state.absorption_rate() << ", leakage "
              << state.leakage().total() << ", fixup cells "
              << r.totals.fixup_cells << "\n";
  }

  cfg.sweep = deck.sweep;
  cfg.sweep.kernel = cfg.kernel;
  cfg.sweep.epsilon = 0.0;  // the timing model replays a fixed count

  // --check: lint the deck, then observe the run with the hazard
  // checker; any finding is a hard error.
  if (check) {
    const analysis::Diagnostics lint = analysis::lint_deck(deck, cfg);
    for (const analysis::Diagnostic& d : lint.entries())
      std::cerr << deck.source << ": " << d.to_string() << "\n";
    if (lint.has_errors()) return 1;
    cfg.hazard = &checker;
  }

  core::CellSweep3D runner(deck.problem, cfg, deck.sn_order, 2, deck.nm_cap);
  const core::RunReport rep = [&] {
    try {
      return runner.run(core::RunMode::kTraceDriven);
    } catch (const sim::FaultError& e) {
      std::cerr << "deck_runner: " << e.what() << "\n";
      std::exit(1);
    }
  }();
  if (check) {
    for (const analysis::Diagnostic& d : diags.entries())
      std::cerr << deck.source << ": " << d.to_string() << "\n";
    if (diags.has_errors()) {
      std::cerr << "deck_runner: hazard check failed with "
                << diags.error_count() << " error(s)\n";
      return 1;
    }
    std::cout << "Hazard check: clean\n";
  }
  return emit_report(rep, stage, profile_windows, trace_path, metrics_path,
                     writer);
}
