#include "cellsim/memory.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cellsweep::cell {

Mic::Mic(const CellSpec& spec)
    : spec_(spec), port_("MIC", spec.mic_bytes_per_s) {}

double Mic::bank_efficiency(int banks_touched) const {
  if (banks_touched < 1) banks_touched = 1;
  const int banks = spec_.memory_banks;
  if (banks_touched >= banks) return 1.0;
  // A request striped over k of n banks can use at most k/n of the
  // aggregate DRAM bandwidth, but command interleaving recovers part of
  // the loss; empirically the penalty is roughly the square root of the
  // naive ratio. Floor at the spec's minimum efficiency.
  const double naive =
      static_cast<double>(banks_touched) / static_cast<double>(banks);
  const double eff = std::sqrt(naive);
  return std::max(eff, spec_.dma_min_efficiency);
}

sim::Tick Mic::submit(sim::Tick now, double bytes, sim::Tick overhead,
                      double efficiency, std::uint64_t elements) {
  if (efficiency <= 0.0 || efficiency > 1.0)
    throw std::invalid_argument("Mic::submit: efficiency out of (0,1]");
  if (elements < 1) elements = 1;
  // Reduced efficiency means the payload occupies the port longer, as
  // if it carried bytes/efficiency of traffic, and each element pays
  // one burst-turnaround gap; the logical byte count is still recorded
  // for the Section 6 traffic audit.
  const double inflated =
      bytes / efficiency + static_cast<double>(elements) * spec_.dram_gap_bytes;
  logical_bytes_ += bytes;
  return port_.submit(now, inflated, overhead);
}

}  // namespace cellsweep::cell
