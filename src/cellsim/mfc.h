// Memory Flow Controller (per-SPE DMA engine) model.
//
// The MFC accepts DMA commands from its SPU through the channel
// interface, queues up to 16 of them, and executes transfers between
// the local store and anything on the EIB. The command rules modeled
// here are the CBEA rules the paper quotes in Section 2:
//   * naturally aligned transfers of 1/2/4/8 bytes, or multiples of
//     16 bytes up to 16 KB;
//   * DMA-list commands batching up to 2048 transfers under a single
//     command (the Fig. 5 "DMA lists" optimization);
//   * peak efficiency requires 128-byte aligned addresses and sizes
//     that are even multiples of 128 bytes.
//
// Timing: the SPU pays a channel-issue cost per command; the command
// then waits for a queue slot, pays a memory-side startup overhead, and
// streams its payload through the EIB and the MIC (whichever finishes
// later bounds completion).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "cellsim/memory.h"
#include "cellsim/spec.h"
#include "sim/time.h"

namespace cellsweep::sim {
class CounterSet;
class FaultPlan;
}

namespace cellsweep::cell {

/// Thrown for commands that violate the CBEA DMA rules.
class DmaError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Direction of a transfer relative to the local store.
enum class DmaDir : std::uint8_t { kGet, kPut };

/// Tag groups per MFC (CBEA: a 5-bit tag identifies the group a
/// command joins; tag-status waits resolve per group).
inline constexpr unsigned kMfcTagGroups = 32;

/// One DMA request as the orchestrator sees it: @p total_bytes of
/// payload moved in elements of (at most) @p element_bytes. With
/// as_list=true this is a single DMA-list command; with as_list=false
/// it accounts a batch of *individual* commands of the same shape (the
/// pre-"DMA lists" implementation that issues one command per 512-byte
/// row). A trailing partial element carries the remainder, so the
/// payload equals total_bytes exactly.
struct DmaRequest {
  DmaDir dir = DmaDir::kGet;
  std::size_t total_bytes = 0;    ///< payload moved by the whole request
  std::size_t element_bytes = 0;  ///< size of one transfer element
  std::size_t alignment = 128;    ///< address alignment of the transfers
  bool as_list = true;            ///< list command vs individual commands
  int banks_touched = 16;         ///< bank spread of the payload addresses
  /// LS-to-LS transfer (SPE to SPE over the EIB): never touches the
  /// MIC, sustains the EIB's much higher rate. Used by the distributed
  /// variant to forward wavefront faces directly between SPEs.
  bool ls_to_ls = false;
  /// Tag group this command joins (0..31). Commands sharing a tag
  /// complete as a group under wait_tag() -- the CBEA discipline the
  /// double-buffer protocol relies on.
  unsigned tag = 0;
  /// Local-store region identity: the LS byte range this command reads
  /// (put) or writes (get). Pure annotation consumed by the hazard
  /// checker; ls_bytes == 0 means unannotated (timing is unaffected
  /// either way).
  std::size_t ls_offset = 0;
  std::size_t ls_bytes = 0;

  /// Transfer elements in this request, including a trailing partial
  /// one. Returns std::size_t: a multi-GB request in quadword elements
  /// exceeds INT_MAX elements, which the old int return truncated.
  std::size_t elements() const {
    if (element_bytes == 0) return 1;
    return (total_bytes + element_bytes - 1) / element_bytes;
  }
};

/// Completion report for a submitted command.
struct DmaCompletion {
  sim::Tick issue_done;  ///< when the SPU may continue (command queued)
  sim::Tick done;        ///< when the payload transfer completes
  /// When the command left the MFC queue and its payload started
  /// moving; issue_done..start is queue back-pressure wait. Observation
  /// only (the trace layer splits issue/queue/transfer phases on it).
  sim::Tick start = 0;
  /// Transient failures this command suffered before succeeding (0 on
  /// the healthy path). Each failed attempt re-streamed the payload and
  /// paid detection + exponential backoff; `done` is the successful
  /// attempt's completion. Observation only.
  int retries = 0;
};

/// Per-SPE DMA engine.
class Mfc {
 public:
  Mfc(const CellSpec& spec, Eib* eib, Mic* mic, std::string name);

  /// Validates @p req against the CBEA rules; throws DmaError with a
  /// description if illegal. Called by submit(); exposed for tests.
  void validate(const DmaRequest& req) const;

  /// Submits a command at @p now. Handles queue-full back-pressure:
  /// if 16 commands are outstanding the SPU blocks until a slot frees.
  /// With a fault plan attached, the command may fail transiently:
  /// each failed attempt streams its payload, is detected via the tag
  /// status fail bit, waits an exponential backoff and resubmits (the
  /// completion reports the retry count).
  DmaCompletion submit(sim::Tick now, const DmaRequest& req);

  /// Arms fault injection for this MFC (@p unit is the decision-hash
  /// coordinate, the SPE index). Pass nullptr to disarm. The plan must
  /// outlive the MFC; a disabled plan is equivalent to nullptr.
  void attach_faults(const sim::FaultPlan* plan, int unit) noexcept {
    faults_ = plan;
    fault_unit_ = unit;
  }

  /// Blocks until all outstanding commands complete ("tag wait").
  sim::Tick wait_all(sim::Tick now) const;

  /// Blocks until every command submitted under @p tag has completed
  /// (MFC tag-status wait for one group). Returns @p now when the
  /// group is already drained (or never used).
  sim::Tick wait_tag(sim::Tick now, unsigned tag) const;

  /// Transfer efficiency for a single transfer of @p bytes with
  /// @p alignment: fraction of peak DRAM burst utilization. 128-byte
  /// aligned, >=128-byte transfers run at 1.0.
  double transfer_efficiency(std::size_t bytes, std::size_t alignment) const;

  /// Burst efficiency of a whole request: full elements at their own
  /// rate plus the trailing partial element (total_bytes %
  /// element_bytes) at *its* real size -- a 16-byte tail does not ride
  /// at a 512-byte element's efficiency.
  double request_efficiency(const DmaRequest& req) const;

  std::uint64_t commands() const noexcept { return commands_; }
  std::uint64_t transfers() const noexcept { return transfers_; }
  double bytes_requested() const noexcept { return bytes_; }
  const std::string& name() const noexcept { return name_; }

  // Fault/resilience counters (all zero unless a plan is armed).
  std::uint64_t retried_commands() const noexcept { return retried_commands_; }
  std::uint64_t retry_attempts() const noexcept { return retry_attempts_; }
  sim::Tick retry_backoff_ticks() const noexcept { return retry_backoff_; }
  std::uint64_t tag_timeouts() const noexcept { return tag_timeouts_; }
  sim::Tick tag_timeout_ticks() const noexcept { return tag_timeout_ticks_; }

  /// Publishes this MFC's counters (commands by type, bytes moved,
  /// queue-full back-pressure, tag waits) into @p out. Snapshot only;
  /// never feeds back into timing.
  void publish_counters(sim::CounterSet& out) const;

  /// Queue occupancy histogram: occupancy_histogram()[k] counts
  /// commands that found k earlier commands still outstanding when they
  /// entered the queue (k ranges 0..depth-1; a full queue blocks until
  /// a slot frees, so depth-1 is the maximum observable).
  const std::array<std::uint64_t, 32>& occupancy_histogram() const noexcept {
    return occupancy_hist_;
  }
  int queue_depth() const noexcept { return depth_; }

  void reset() noexcept;

 private:
  CellSpec spec_;
  Eib* eib_;
  Mic* mic_;
  std::string name_;
  /// Completion times of outstanding commands (bounded by queue depth).
  std::array<sim::Tick, 32> slots_{};
  /// Latest completion time per tag group (monotone: a group's wait
  /// must cover every command ever submitted under it).
  std::array<sim::Tick, kMfcTagGroups> tag_done_{};
  int depth_;
  std::uint64_t commands_ = 0;
  std::uint64_t transfers_ = 0;
  double bytes_ = 0.0;
  std::array<std::uint64_t, 32> occupancy_hist_{};
  // Command-mix and stall counters (observation only; the mutable ones
  // are bumped from the const wait entry points, which never change
  // timing state).
  std::uint64_t get_commands_ = 0;
  std::uint64_t put_commands_ = 0;
  std::uint64_t list_commands_ = 0;
  std::uint64_t ls_to_ls_commands_ = 0;
  std::uint64_t queue_full_commands_ = 0;
  sim::Tick queue_full_ticks_ = 0;
  mutable std::uint64_t tag_waits_ = 0;
  mutable sim::Tick tag_wait_ticks_ = 0;
  // Fault injection (inert unless attach_faults() armed a plan). The
  // sequence counters are the decision-hash coordinates: one per DMA
  // command submitted, one per tag wait served, so the schedule is a
  // pure function of submission order.
  const sim::FaultPlan* faults_ = nullptr;
  int fault_unit_ = 0;
  std::uint64_t fault_seq_ = 0;
  mutable std::uint64_t tag_fault_seq_ = 0;
  std::uint64_t retried_commands_ = 0;
  std::uint64_t retry_attempts_ = 0;
  sim::Tick retry_backoff_ = 0;
  mutable std::uint64_t tag_timeouts_ = 0;
  mutable sim::Tick tag_timeout_ticks_ = 0;
};

}  // namespace cellsweep::cell
