// Unit tests for the dispatch fabric: the three sync protocols of the
// paper's Section 5 / Figure 10.
#include <gtest/gtest.h>

#include "cellsim/sync.h"

namespace cellsweep::cell {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  CellSpec spec_;
  DispatchFabric fabric_{spec_};
};

TEST_F(SyncTest, ProtocolNames) {
  EXPECT_STREQ(sync_protocol_name(SyncProtocol::kMailbox), "mailbox");
  EXPECT_STREQ(sync_protocol_name(SyncProtocol::kLsPoke), "ls-poke");
  EXPECT_STREQ(sync_protocol_name(SyncProtocol::kAtomicDistributed),
               "atomic-distributed");
}

TEST_F(SyncTest, PokeGrantsFasterThanMailbox) {
  DispatchFabric a(spec_), b(spec_);
  const sim::Tick mail = a.acquire_work(0, SyncProtocol::kMailbox);
  const sim::Tick poke = b.acquire_work(0, SyncProtocol::kLsPoke);
  EXPECT_LT(poke, mail);
}

TEST_F(SyncTest, AtomicGrantsCheapest) {
  DispatchFabric a(spec_), b(spec_);
  const sim::Tick poke = a.acquire_work(0, SyncProtocol::kLsPoke);
  const sim::Tick atom = b.acquire_work(0, SyncProtocol::kAtomicDistributed);
  EXPECT_LT(atom, poke);
}

TEST_F(SyncTest, CentralizedGrantsSerialize) {
  // Eight simultaneous grant requests queue on the single PPE.
  sim::Tick prev = 0;
  for (int i = 0; i < 8; ++i) {
    const sim::Tick t = fabric_.acquire_work(0, SyncProtocol::kMailbox);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(fabric_.grants(), 8u);
}

TEST_F(SyncTest, ReportsCheaperThanGrants) {
  // Completion polls do not pay the PPE's per-chunk dispatch work.
  DispatchFabric a(spec_), b(spec_);
  sim::Tick g = 0, r = 0;
  for (int i = 0; i < 4; ++i) {
    g = a.acquire_work(0, SyncProtocol::kLsPoke);
    r = b.report_done(0, SyncProtocol::kLsPoke);
  }
  EXPECT_LT(r, g);
}

TEST_F(SyncTest, DistributedReportIsLocal) {
  // Under distributed self-scheduling there is no PPE round trip.
  const sim::Tick t = fabric_.report_done(1000, SyncProtocol::kAtomicDistributed);
  EXPECT_LT(t - 1000, spec_.atomic_op_latency);
}

TEST_F(SyncTest, GrantsAndReportsShareThePpe) {
  // A report queues behind an in-flight grant on the same server: the
  // queued report completes later than one on an idle fabric.
  DispatchFabric idle(spec_);
  const sim::Tick idle_report = idle.report_done(0, SyncProtocol::kMailbox);
  fabric_.acquire_work(0, SyncProtocol::kMailbox);
  const sim::Tick queued_report =
      fabric_.report_done(0, SyncProtocol::kMailbox);
  EXPECT_GT(queued_report, idle_report);
}

TEST_F(SyncTest, ResetClearsCounters) {
  fabric_.acquire_work(0, SyncProtocol::kMailbox);
  fabric_.report_done(0, SyncProtocol::kMailbox);
  fabric_.reset();
  EXPECT_EQ(fabric_.grants(), 0u);
  EXPECT_EQ(fabric_.reports(), 0u);
  // After reset the server is idle again.
  const sim::Tick t = fabric_.acquire_work(0, SyncProtocol::kMailbox);
  EXPECT_EQ(t, spec_.mailbox_latency);
}

}  // namespace
}  // namespace cellsweep::cell
