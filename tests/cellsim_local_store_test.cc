// Unit tests for the 256 KB local-store budget model.
#include <gtest/gtest.h>

#include "cellsim/local_store.h"

namespace cellsweep::cell {
namespace {

TEST(LocalStore, CodeReservationUpFront) {
  LocalStore ls(256 * 1024, 48 * 1024);
  EXPECT_EQ(ls.used(), 48u * 1024u);
  EXPECT_EQ(ls.available(), 208u * 1024u);
  EXPECT_EQ(ls.regions().size(), 1u);
}

TEST(LocalStore, AllocationsAre128ByteAligned) {
  LocalStore ls(256 * 1024);
  const std::size_t a = ls.allocate("a", 100);
  const std::size_t b = ls.allocate("b", 1);
  EXPECT_EQ(a % 128, 0u);
  EXPECT_EQ(b % 128, 0u);
  EXPECT_EQ(b - a, 128u);  // 100 B padded to one line
}

TEST(LocalStore, OverflowThrowsWithContext) {
  LocalStore ls(256 * 1024);
  ls.allocate("big", 200 * 1024);
  try {
    ls.allocate("toobig", 64 * 1024);
    FAIL() << "expected LocalStoreOverflow";
  } catch (const LocalStoreOverflow& e) {
    EXPECT_NE(std::string(e.what()).find("toobig"), std::string::npos);
  }
}

TEST(LocalStore, ExactFitSucceeds) {
  LocalStore ls(256 * 1024, 0);
  EXPECT_NO_THROW(ls.allocate("all", 256 * 1024));
  EXPECT_EQ(ls.available(), 0u);
}

TEST(LocalStore, ResetKeepsCodeReservation) {
  LocalStore ls(256 * 1024, 48 * 1024);
  ls.allocate("x", 1024);
  ls.reset();
  EXPECT_EQ(ls.used(), 48u * 1024u);
  EXPECT_EQ(ls.regions().size(), 1u);
}

TEST(LocalStore, HighWaterSurvivesReset) {
  LocalStore ls(256 * 1024, 0);
  ls.allocate("x", 100 * 1024);
  ls.reset();
  EXPECT_EQ(ls.high_water(), 100u * 1024u);
}

TEST(LocalStore, CodeReservationMustFit) {
  EXPECT_THROW(LocalStore(16 * 1024, 32 * 1024), LocalStoreOverflow);
}

TEST(LocalStore, DescribeListsRegions) {
  LocalStore ls(256 * 1024);
  ls.allocate("chunk-buffer", 32 * 1024);
  const std::string d = ls.describe();
  EXPECT_NE(d.find("chunk-buffer"), std::string::npos);
  EXPECT_NE(d.find("(code+stack)"), std::string::npos);
}

TEST(LocalStore, DescribeListsEveryRegion) {
  LocalStore ls(256 * 1024);
  ls.allocate("chunk-buffer-0", 32 * 1024);
  ls.allocate("chunk-buffer-1", 32 * 1024);
  ls.allocate("constants", 4 * 1024);
  const std::string d = ls.describe();
  for (const char* name :
       {"chunk-buffer-0", "chunk-buffer-1", "constants", "(code+stack)"})
    EXPECT_NE(d.find(name), std::string::npos) << name << " in:\n" << d;
}

TEST(LocalStore, HighWaterIsMonotone) {
  LocalStore ls(256 * 1024, 0);
  EXPECT_EQ(ls.high_water(), 0u);
  ls.allocate("big", 100 * 1024);
  EXPECT_EQ(ls.high_water(), 100u * 1024u);
  ls.reset();
  // A smaller configuration never lowers the mark...
  ls.allocate("small", 10 * 1024);
  EXPECT_EQ(ls.high_water(), 100u * 1024u);
  ls.reset();
  // ...and a bigger one raises it.
  ls.allocate("bigger", 150 * 1024);
  EXPECT_EQ(ls.high_water(), 150u * 1024u);
}

TEST(LocalStore, ResetAllowsFullReuse) {
  // Between sweep configurations the orchestrator resets and
  // reallocates; offsets must restart right after the code reserve.
  LocalStore ls(256 * 1024, 48 * 1024);
  const std::size_t first = ls.allocate("a", 64 * 1024);
  ls.allocate("b", 64 * 1024);
  ls.reset();
  EXPECT_EQ(ls.available(), 208u * 1024u);
  const std::size_t again = ls.allocate("c", 64 * 1024);
  EXPECT_EQ(again, first);
  EXPECT_EQ(ls.regions().size(), 2u);  // code reserve + "c"
  EXPECT_EQ(ls.regions().back().name, "c");
  EXPECT_EQ(ls.regions().back().bytes, 64u * 1024u);
}

}  // namespace
}  // namespace cellsweep::cell
