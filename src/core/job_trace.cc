#include "core/job_trace.h"

#include <algorithm>

#include "sim/trace.h"

namespace cellsweep::core {

namespace {

sim::Tick ticks(double host_s) {
  return host_s <= 0.0 ? 0 : sim::ticks_from_seconds(host_s);
}

}  // namespace

void write_job_trace_events(sim::ChromeTraceWriter& writer,
                            const std::vector<TracedJob>& jobs) {
  const int admission = writer.track("admission");
  // Tenant tracks in worker order, declared up front so the timeline
  // rows sort 0..N-1 regardless of which tenant finished first.
  int max_tenant = -1;
  for (const TracedJob& j : jobs)
    max_tenant = std::max(max_tenant, j.trace.tenant);
  std::vector<int> tenant_track(static_cast<std::size_t>(max_tenant + 1), -1);
  for (int t = 0; t <= max_tenant; ++t)
    tenant_track[static_cast<std::size_t>(t)] =
        writer.track("tenant-" + std::to_string(t));

  for (const TracedJob& j : jobs) {
    const JobTrace& t = j.trace;
    if (JobTrace::reached(t.admit_start_s) &&
        JobTrace::reached(t.admit_end_s)) {
      writer.span_copy(admission, "admit " + j.name, "admission",
                       ticks(t.admit_start_s), ticks(t.admit_end_s));
    }
    if (t.tenant < 0) continue;  // rejected, or cancelled before dequeue
    const int track = tenant_track[static_cast<std::size_t>(t.tenant)];
    if (JobTrace::reached(t.enqueue_s) && JobTrace::reached(t.dequeue_s)) {
      writer.span_copy(track, "queue-wait " + j.name, "queue",
                       ticks(t.enqueue_s), ticks(t.dequeue_s));
    }
    if (!t.complete) {
      if (JobTrace::reached(t.dequeue_s))
        writer.instant(track, "cancelled", "lifecycle", ticks(t.dequeue_s));
      continue;
    }
    // The job span covers dequeue -> report; plan, claim-wait and solve
    // nest inside it (Chrome "X" events nest by containment).
    const double job_end =
        JobTrace::reached(t.report_s) ? t.report_s : t.run_end_s;
    writer.span_copy(track, j.name, "job", ticks(t.dequeue_s),
                     ticks(job_end));
    if (JobTrace::reached(t.plan_start_s) && JobTrace::reached(t.plan_end_s))
      writer.span_copy(track, "plan " + j.name, "plan", ticks(t.plan_start_s),
                       ticks(t.plan_end_s));
    if (JobTrace::reached(t.run_start_s) && JobTrace::reached(t.run_end_s)) {
      writer.span_copy(track, "solve " + j.name, "solve",
                       ticks(t.run_start_s), ticks(t.run_end_s));
      if (t.claim_wait_s > 0.0)
        writer.span_copy(track, "spe-claim-wait " + j.name, "allocator",
                         ticks(t.run_start_s),
                         ticks(t.run_start_s + t.claim_wait_s));
    }
  }
}

}  // namespace cellsweep::core
