// Seeded randomized soak for the open-system SolveServer (satellite of
// the arrivals/QoS tentpole; also the TSan workhorse in CI). A burst-
// heavy mixed sweep+stencil arrival plan is replayed flat-out into a
// small-queue server with weights, quotas and a fault plan armed while
// a concurrent chaos thread fires cancel() at random ids -- hitting
// jobs mid-queue, mid-run and already-done. The invariant under all of
// that is conservation: no job is lost, duplicated, or double-counted.
//
//   attempts             == submitted + rejected
//   submitted            == completed + failed + cancelled   (drained)
//   drain().size()       == submitted, ids unique, one result per id
//   result category tally== the Stats counters, exactly
//
// The chaos is seeded (util::SplitMix64) so a failure replays.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/arrival.h"
#include "server/arrival_driver.h"
#include "server/solve_server.h"
#include "sim/fault.h"
#include "util/rng.h"

namespace cellsweep::core {
namespace {

// Small trace-driven deck: a few ms per solve, exercises the fault
// plan and the simulated chip (functional mode would bypass faults).
constexpr const char* kTinyDeck =
    "it 8  jt 8  kt 8\n"
    "dx 0.04  dy 0.04  dz 0.04\n"
    "mk 4  mmi 3\n"
    "sn 6  moments 6\n"
    "iterations 2  fixup_from 1\n"
    "material benchmark 1.0 0.5 0.2 0.05 source 1.0\n";

// Bigger deck: tens of ms per solve, so the chaos thread can catch
// jobs mid-run and the queue actually backs up against queue_limit.
constexpr const char* kSlowDeck =
    "it 24  jt 24  kt 24\n"
    "dx 0.04  dy 0.04  dz 0.04\n"
    "mk 4  mmi 3\n"
    "sn 6  moments 6\n"
    "iterations 4  fixup_from 1\n"
    "material benchmark 1.0 0.5 0.2 0.05 source 1.0\n";

constexpr const char* kTinyStencil =
    "nx 8  ny 8  nz 8\n"
    "bx 4  by 4  bz 4\n"
    "iterations 2\n";

JobRequest request_for(const Arrival& a, std::uint64_t k) {
  JobRequest req;
  req.name = "soak-" + std::to_string(k);
  if (k % 4 == 3) {
    req.kind = JobKind::kStencil;
    req.text = kTinyStencil;
    req.mode = RunMode::kFunctional;
  } else {
    req.kind = JobKind::kSweep;
    req.text = (k % 7 == 5) ? kSlowDeck : kTinyDeck;
    req.mode = RunMode::kTraceDriven;
  }
  // A sprinkle of tight queue deadlines: under the burst some of these
  // expire while queued and land in Stats::cancelled via the deadline
  // path. Which ones expire is timing-dependent; the conservation law
  // must hold regardless.
  if (k % 9 == 4) req.deadline_ms = 1;
  (void)a;
  return req;
}

TEST(SolveServerSoak, SeededChaosConservesEveryJob) {
  const ArrivalPlan plan(parse_arrival_spec(
      "seed=97,tenant=0:rate:500:30,tenant=1:rate:400:30,tenant=2:burst:20"));

  ServerConfig cfg;
  cfg.tenants = 3;
  cfg.host_threads = 2;
  cfg.queue_limit = 12;  // small on purpose: open-system loss is real
  cfg.tenant_weights = {1, 2, 3};
  cfg.tenant_quotas = {0, 6, 4};
  cfg.faults = sim::parse_fault_spec("seed=9,spe=6:down,dma=0.01,retries=4");
  SolveServer server(cfg);

  ArrivalDriver driver(server, plan, request_for, /*time_scale=*/0.0);

  // Chaos: seeded random cancels while the driver floods the server.
  // Targets are sampled from the ids admitted so far, so early ids see
  // repeated attempts (mid-run and already-done hits) and late ids see
  // mid-queue hits. cancel() returning false is the benign "too late"
  // race by contract.
  std::atomic<bool> chaos_stop{false};
  std::uint64_t cancels_won = 0;
  std::thread chaos([&] {
    util::SplitMix64 rng(0xC4A05u);
    while (!chaos_stop.load(std::memory_order_relaxed)) {
      const std::vector<int> ids = driver.ids();
      if (!ids.empty()) {
        const int id = ids[static_cast<std::size_t>(rng()) % ids.size()];
        if (server.cancel(id)) ++cancels_won;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  driver.start();
  driver.join();
  chaos_stop.store(true, std::memory_order_relaxed);
  chaos.join();

  const std::vector<JobResult> results = server.drain();
  const SolveServer::Stats st = server.stats();
  const ArrivalDriver::Stats ds = driver.stats();

  // Every planned arrival was attempted, and the server and the driver
  // agree on what happened at admission.
  EXPECT_EQ(ds.submitted + ds.rejected, plan.total());
  EXPECT_EQ(st.submitted, ds.submitted);
  EXPECT_EQ(st.rejected, ds.rejected);
  EXPECT_GE(ds.submitted, 1u);

  // Conservation: every admitted job landed in exactly one bucket.
  EXPECT_EQ(st.completed + st.failed + st.cancelled, st.submitted);

  // No lost or duplicated jobs: one result per admitted id, exactly.
  ASSERT_EQ(results.size(), st.submitted);
  std::set<int> result_ids;
  for (const JobResult& r : results) result_ids.insert(r.id);
  EXPECT_EQ(result_ids.size(), results.size()) << "duplicate job ids";
  const std::vector<int> admitted = driver.ids();
  ASSERT_EQ(admitted.size(), st.submitted);
  for (int id : admitted) EXPECT_EQ(result_ids.count(id), 1u) << id;

  // The per-result categories re-tally the counters exactly, and every
  // result is internally consistent.
  std::uint64_t ok = 0, failed = 0, cancelled = 0;
  for (const JobResult& r : results) {
    if (r.cancelled) {
      ++cancelled;
      EXPECT_FALSE(r.ok);
      EXPECT_EQ(r.error.rfind("cancelled:", 0), 0u) << r.error;
      EXPECT_FALSE(r.trace.complete);
    } else if (r.ok) {
      ++ok;
      EXPECT_TRUE(r.trace.complete);
    } else {
      ++failed;
    }
    // wait() after drain() must hand back the same outcome, not a
    // second (duplicated) completion.
    const JobResult again = server.wait(r.id);
    EXPECT_EQ(again.ok, r.ok);
    EXPECT_EQ(again.cancelled, r.cancelled);
  }
  EXPECT_EQ(ok, st.completed);
  EXPECT_EQ(failed, st.failed);
  EXPECT_EQ(cancelled, st.cancelled);
  // No tight relation between cancels_won and st.cancelled is valid:
  // a cancel() that caught a *running* job returns true yet can still
  // lose to completion (the flag is polled between waves), and
  // deadline expiries are server-side cancellations with no cancel()
  // call at all. Conservation above is the invariant; this is just a
  // breadcrumb for the log on failure.
  SCOPED_TRACE("cancels_won=" + std::to_string(cancels_won));

  // The randomized phase cannot guarantee a successful cancel landed,
  // so pin one deterministically: a slow blocker occupies workers
  // while a victim sits queued long enough to cancel for sure.
  std::vector<int> blockers;
  JobRequest slow;
  slow.kind = JobKind::kSweep;
  slow.text = kSlowDeck;
  slow.mode = RunMode::kTraceDriven;
  for (int i = 0; i < cfg.tenants; ++i) {
    slow.name = "blocker-" + std::to_string(i);
    blockers.push_back(server.submit(slow));
  }
  JobRequest victim;
  victim.kind = JobKind::kSweep;
  victim.text = kTinyDeck;
  victim.mode = RunMode::kTraceDriven;
  victim.name = "victim";
  const int victim_id = server.submit(victim);
  EXPECT_TRUE(server.cancel(victim_id));
  const JobResult vr = server.wait(victim_id);
  EXPECT_TRUE(vr.cancelled);
  // The blockers run under the armed fault plan, so exhausted DMA
  // retries may legitimately fail them -- they just must not be
  // cancelled (nobody cancelled them).
  for (int id : blockers) EXPECT_FALSE(server.wait(id).cancelled);

  const SolveServer::Stats fin = server.stats();
  EXPECT_GE(fin.cancelled, 1u);
  EXPECT_EQ(fin.completed + fin.failed + fin.cancelled, fin.submitted);
}

// The deadline knob alone, at soak scale: a queue full of 1 ms
// deadlines behind slow blockers. Every doomed job must resolve as
// cancelled-by-deadline -- never run, never counted failed -- and the
// conservation law must survive a pure-deadline storm.
TEST(SolveServerSoak, DeadlineStormResolvesEveryDoomedJob) {
  ServerConfig cfg;
  cfg.tenants = 2;
  cfg.queue_limit = 64;
  SolveServer server(cfg);

  JobRequest slow;
  slow.kind = JobKind::kSweep;
  slow.text = kSlowDeck;
  slow.mode = RunMode::kTraceDriven;
  std::vector<int> blockers;
  for (int i = 0; i < cfg.tenants; ++i) {
    slow.name = "blocker-" + std::to_string(i);
    blockers.push_back(server.submit(slow));
  }

  std::vector<int> doomed;
  JobRequest d;
  d.kind = JobKind::kSweep;
  d.text = kTinyDeck;
  d.mode = RunMode::kTraceDriven;
  d.deadline_ms = 1;
  for (int i = 0; i < 16; ++i) {
    d.name = "doomed-" + std::to_string(i);
    doomed.push_back(server.submit(d));
  }

  for (int id : blockers) EXPECT_TRUE(server.wait(id).ok);
  std::uint64_t expired = 0;
  for (int id : doomed) {
    const JobResult r = server.wait(id);
    if (!r.cancelled) continue;  // dequeued in time after all
    ++expired;
    EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
    EXPECT_FALSE(r.trace.reached(r.trace.run_start_s));
  }
  // The blockers hold both workers for tens of ms; 1 ms deadlines
  // cannot all survive that.
  EXPECT_GE(expired, 1u);

  const SolveServer::Stats st = server.stats();
  EXPECT_EQ(st.cancelled, expired);
  EXPECT_EQ(st.completed + st.failed + st.cancelled, st.submitted);
}

}  // namespace
}  // namespace cellsweep::core
