// Aligned memory utilities.
//
// The Cell BE's MFC reaches peak DMA bandwidth only when both the
// effective address and the local-store address are 128-byte aligned
// (one EIB cache line). Sweep3D's port therefore forces every array --
// and every *row* of every flattened multi-dimensional array -- onto
// 128-byte boundaries (paper, Section 5, steps 3 and the
// "array allocation" optimization). This header provides the allocator
// and the padding helpers that the whole code base uses for that.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace cellsweep::util {

/// Cache-line / DMA-optimal alignment on the Cell BE (bytes).
inline constexpr std::size_t kCacheLineBytes = 128;

/// Rounds @p n up to the next multiple of @p align (align must be a
/// power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

/// True if @p n is a multiple of @p align (align must be a power of two).
constexpr bool is_aligned(std::size_t n, std::size_t align) noexcept {
  return (n & (align - 1)) == 0;
}

/// True if pointer @p p is aligned to @p align bytes.
inline bool is_aligned(const void* p, std::size_t align) noexcept {
  return is_aligned(reinterpret_cast<std::size_t>(p), align);
}

/// Minimal standard-conforming allocator that hands out storage aligned
/// to kCacheLineBytes. Use through AlignedVector.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = round_up(n * sizeof(T), kCacheLineBytes);
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Vector whose data() is always 128-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Number of elements of type T that fill a whole number of cache lines
/// while holding at least @p n elements. Used to pad array *rows* so
/// each row starts on a DMA-friendly boundary.
template <typename T>
constexpr std::size_t padded_extent(std::size_t n) noexcept {
  return round_up(n * sizeof(T), kCacheLineBytes) / sizeof(T);
}

}  // namespace cellsweep::util
