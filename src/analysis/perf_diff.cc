#include "analysis/perf_diff.h"

#include <cmath>

#include "util/json.h"

namespace cellsweep::analysis {
namespace {

using util::JsonValue;

/// Structural equality; member order is ignored so a rewritten baseline
/// with reordered fingerprint keys still matches.
bool json_equal(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_v == b.bool_v;
    case JsonValue::Kind::kNumber: return a.number_v == b.number_v;
    case JsonValue::Kind::kString: return a.string_v == b.string_v;
    case JsonValue::Kind::kArray: {
      if (a.array_v.size() != b.array_v.size()) return false;
      for (std::size_t i = 0; i < a.array_v.size(); ++i)
        if (!json_equal(a.array_v[i], b.array_v[i])) return false;
      return true;
    }
    case JsonValue::Kind::kObject: {
      if (a.object_v.size() != b.object_v.size()) return false;
      for (const auto& [k, v] : a.object_v) {
        const JsonValue* o = b.find(k);
        if (o == nullptr || !json_equal(v, *o)) return false;
      }
      return true;
    }
  }
  return false;
}

/// The runs array as (name -> metrics object) pairs, document order.
std::vector<std::pair<std::string, const JsonValue*>> runs_of(
    const JsonValue& doc, const char* which,
    std::vector<std::string>& errors) {
  std::vector<std::pair<std::string, const JsonValue*>> out;
  const JsonValue* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    errors.push_back(std::string(which) + ": no \"runs\" array");
    return out;
  }
  for (const JsonValue& r : runs->array_v) {
    const JsonValue* name = r.find("name");
    const JsonValue* metrics = r.find("metrics");
    if (name == nullptr || !name->is_string() || metrics == nullptr ||
        !metrics->is_object()) {
      errors.push_back(std::string(which) +
                       ": run without string \"name\" + object \"metrics\"");
      continue;
    }
    out.emplace_back(name->string_v, metrics);
  }
  return out;
}

}  // namespace

const char* diff_status_name(DiffStatus s) {
  switch (s) {
    case DiffStatus::kOk: return "ok";
    case DiffStatus::kImproved: return "improved";
    case DiffStatus::kRegressed: return "REGRESSED";
    case DiffStatus::kSkipped: return "skipped";
  }
  return "?";
}

bool PerfDiffResult::regressed() const {
  for (const DiffRow& r : rows)
    if (r.status == DiffStatus::kRegressed) return true;
  return false;
}

PerfDiffResult diff_bench(const util::JsonValue& current,
                          const util::JsonValue& baseline,
                          const PerfDiffOptions& opt) {
  PerfDiffResult res;

  // Gate 1: schema versions. Both sides must carry the version this
  // differ implements; anything else means the layout changed under us.
  const std::string cur_schema = current.string_or("schema", "<missing>");
  const std::string base_schema = baseline.string_or("schema", "<missing>");
  if (cur_schema != kBenchSchema)
    res.errors.push_back("current: schema \"" + cur_schema +
                         "\" != expected \"" + kBenchSchema + "\"");
  if (base_schema != kBenchSchema)
    res.errors.push_back("baseline: schema \"" + base_schema +
                         "\" != expected \"" + kBenchSchema + "\"");

  // Gate 2: same scenario.
  const std::string cur_sc = current.string_or("scenario", "<missing>");
  const std::string base_sc = baseline.string_or("scenario", "<missing>");
  if (cur_sc != base_sc)
    res.errors.push_back("scenario mismatch: current \"" + cur_sc +
                         "\" vs baseline \"" + base_sc + "\"");

  // Gate 3: same experiment fingerprint.
  if (opt.check_fingerprint) {
    const JsonValue* cf = current.find("fingerprint");
    const JsonValue* bf = baseline.find("fingerprint");
    if (cf == nullptr || bf == nullptr) {
      res.errors.push_back("missing \"fingerprint\" object");
    } else if (!json_equal(*cf, *bf)) {
      res.errors.push_back(
          "fingerprint mismatch: the two files measure different "
          "experiments; regenerate the baseline");
    }
  }

  // No early return on gate failures: a CI run should surface every
  // problem -- schema AND scenario AND fingerprint AND each regressed
  // metric -- in one pass, not one per rerun. The run extraction below
  // only needs the "runs" layout, so it stays meaningful (and appends
  // its own structure errors) even when a gate above already fired.
  const auto cur_runs = runs_of(current, "current", res.errors);
  const auto base_runs = runs_of(baseline, "baseline", res.errors);

  // Compared metrics: the lower-is-better defaults plus any explicitly
  // thresholded ones.
  std::vector<std::pair<std::string, double>> metrics = {
      {"seconds", opt.default_threshold},
      {"grind_seconds", opt.default_threshold}};
  for (const auto& [name, thr] : opt.metric_thresholds) {
    bool found = false;
    for (auto& m : metrics)
      if (m.first == name) {
        m.second = thr;
        found = true;
      }
    if (!found) metrics.emplace_back(name, thr);
  }

  for (const auto& [run_name, base_metrics] : base_runs) {
    const JsonValue* cur_metrics = nullptr;
    for (const auto& [n, m] : cur_runs)
      if (n == run_name) cur_metrics = m;
    if (cur_metrics == nullptr) {
      res.errors.push_back("run \"" + run_name +
                           "\" is in the baseline but not in current");
      continue;
    }
    for (const auto& [metric, threshold] : metrics) {
      DiffRow row;
      row.run = run_name;
      row.metric = metric;
      row.threshold = threshold;
      const JsonValue* b = base_metrics->find(metric);
      const JsonValue* c = cur_metrics->find(metric);
      if (b == nullptr || c == nullptr || b->is_null() || c->is_null()) {
        row.note = "metric null or absent";
      } else if (!b->is_number() || !c->is_number()) {
        row.note = "metric not numeric";
      } else if (!(b->number_v > 0) || !std::isfinite(c->number_v)) {
        row.note = "baseline not positive";
      } else {
        row.baseline = b->number_v;
        row.current = c->number_v;
        row.ratio = c->number_v / b->number_v;
        row.status = row.ratio > 1.0 + threshold ? DiffStatus::kRegressed
                     : row.ratio < 1.0           ? DiffStatus::kImproved
                                                 : DiffStatus::kOk;
      }
      res.rows.push_back(std::move(row));
    }
  }
  return res;
}

}  // namespace cellsweep::analysis
