// Tests for the input-deck parser.
#include <gtest/gtest.h>

#include "sweep/deck.h"
#include "sweep/sweeper.h"

namespace cellsweep::sweep {
namespace {

const char* kBasicDeck = R"(
# the paper's benchmark deck
it 50  jt 50  kt 50
dx 0.04  dy 0.04  dz 0.04
mk 10
mmi 3
sn 6
moments 6
iterations 12
fixup_from 10
material benchmark 1.0 0.5 0.2 0.05 source 1.0
)";

TEST(Deck, ParsesBenchmarkDeck) {
  const Deck d = parse_deck_string(kBasicDeck);
  EXPECT_EQ(d.problem.grid().it, 50);
  EXPECT_EQ(d.problem.grid().kt, 50);
  EXPECT_DOUBLE_EQ(d.problem.grid().dx, 0.04);
  EXPECT_EQ(d.sweep.mk, 10);
  EXPECT_EQ(d.sweep.mmi, 3);
  EXPECT_EQ(d.sweep.max_iterations, 12);
  EXPECT_EQ(d.sweep.fixup_from_iteration, 10);
  EXPECT_EQ(d.sn_order, 6);
  EXPECT_EQ(d.nm_cap, 6);
  ASSERT_EQ(d.problem.materials().size(), 1u);
  EXPECT_DOUBLE_EQ(d.problem.materials()[0].sigma_t, 1.0);
  ASSERT_EQ(d.problem.materials()[0].sigma_s.size(), 3u);
  EXPECT_DOUBLE_EQ(d.problem.materials()[0].q_ext, 1.0);
}

TEST(Deck, KeysMayShareLines) {
  const Deck d = parse_deck_string(
      "it 8 jt 10 kt 12\n# comment\nmaterial m 1.0 0.5 source 1.0\n");
  EXPECT_EQ(d.problem.grid().it, 8);
  EXPECT_EQ(d.problem.grid().jt, 10);
  EXPECT_EQ(d.problem.grid().kt, 12);
}

TEST(Deck, RegionsOverwriteBoxes) {
  const Deck d = parse_deck_string(R"(
it 8
jt 8
kt 8
material air 0.1 0.05 source 0.0
material shield 8.0 0.4 source 0.0
region 1 2 6 0 8 0 8
)");
  EXPECT_EQ(d.problem.material_of(0, 0, 0).name, "air");
  EXPECT_EQ(d.problem.material_of(3, 4, 4).name, "shield");
  EXPECT_EQ(d.problem.material_of(7, 4, 4).name, "air");
}

TEST(Deck, BoundaryConditions) {
  const Deck d = parse_deck_string(R"(
it 4
jt 4
kt 4
material m 1.0 0.5 source 1.0
bc west reflective
bc top reflective
)");
  EXPECT_EQ(d.problem.boundary(kFaceWest), FaceBc::kReflective);
  EXPECT_EQ(d.problem.boundary(kFaceTop), FaceBc::kReflective);
  EXPECT_EQ(d.problem.boundary(kFaceEast), FaceBc::kVacuum);
}

TEST(Deck, AccelerateFlag) {
  const Deck on = parse_deck_string(
      "it 4\njt 4\nkt 4\naccelerate 1\nmaterial m 1.0 0.5 source 1.0\n");
  EXPECT_TRUE(on.sweep.accelerate);
  const Deck off = parse_deck_string(
      "it 4\njt 4\nkt 4\naccelerate 0\nmaterial m 1.0 0.5 source 1.0\n");
  EXPECT_FALSE(off.sweep.accelerate);
}

TEST(Deck, DefaultMkDividesKt) {
  const Deck d = parse_deck_string(
      "it 6\njt 6\nkt 14\nmaterial m 1.0 0.5 source 1.0\n");
  EXPECT_EQ(14 % d.sweep.mk, 0);
  EXPECT_GT(d.sweep.mk, 1);
}

TEST(Deck, ParsedDeckSolves) {
  const Deck d = parse_deck_string(R"(
it 6
jt 6
kt 6
mk 3
mmi 3
iterations 4
fixup_from 99
material m 1.0 0.5 source 1.0
)");
  SnQuadrature quad(d.sn_order);
  SweepState<double> state(d.problem, quad, 2, d.nm_cap);
  const SolveResult r = solve_source_iteration(state, d.sweep);
  EXPECT_EQ(r.iterations, 4);
  EXPECT_GT(state.flux().moment_sum(0), 0.0);
}

TEST(Deck, ErrorsCarryLineNumbers) {
  try {
    parse_deck_string("it 4\nbogus 12\n");
    FAIL() << "expected DeckError";
  } catch (const DeckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Deck, RejectsMissingMaterial) {
  EXPECT_THROW(parse_deck_string("it 4\njt 4\nkt 4\n"), DeckError);
}

TEST(Deck, RejectsMaterialWithoutSource) {
  EXPECT_THROW(parse_deck_string("it 4\njt 4\nkt 4\nmaterial m 1.0 0.5\n"),
               DeckError);
}

TEST(Deck, RejectsBadRegion) {
  EXPECT_THROW(parse_deck_string(R"(
it 4
jt 4
kt 4
material m 1.0 0.5 source 1.0
region 3 0 4 0 4 0 4
)"),
               DeckError);
  EXPECT_THROW(parse_deck_string(R"(
it 4
jt 4
kt 4
material m 1.0 0.5 source 1.0
region 0 0 9 0 4 0 4
)"),
               DeckError);
}

TEST(Deck, RejectsBadBlocking) {
  EXPECT_THROW(parse_deck_string(
                   "it 4\njt 4\nkt 4\nmk 3\nmaterial m 1.0 0.5 source 1.0\n"),
               std::exception);  // 3 does not divide 4
}

TEST(Deck, RejectsBadFaceOrKind) {
  EXPECT_THROW(parse_deck_string(
                   "it 4\njt 4\nkt 4\nmaterial m 1 0.5 source 1\nbc up vacuum\n"),
               DeckError);
  EXPECT_THROW(
      parse_deck_string(
          "it 4\njt 4\nkt 4\nmaterial m 1 0.5 source 1\nbc west mirror\n"),
      DeckError);
}

TEST(Deck, LoadRejectsMissingFile) {
  EXPECT_THROW(load_deck("/nonexistent/path.deck"), DeckError);
}

}  // namespace
}  // namespace cellsweep::sweep
