// Ablation: DMA transfer granularity.
//
// The paper ships 512-byte DMA-list elements and projects a win from
// larger transfers ("increasing the communication granularity of the
// DMA operations", Section 6). This sweep quantifies the whole curve:
// element size vs run time, on the final configuration.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Ablation: DMA granularity sweep (" +
                      std::to_string(opt.cube) + "^3, final config)");

  util::TextTable table({"element size [B]", "run time [s]", "MIC busy [s]",
                         "DMA transfers", "note"});
  bench::BenchJson json("ablation_dma_granularity", opt.cube);
  for (std::size_t elem : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    const sweep::Problem problem = sweep::Problem::benchmark_cube(opt.cube);
    core::CellSweepConfig cfg =
        core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
    cfg.dma_granularity = elem;
    core::CellSweep3D runner(problem, cfg);
    const core::RunReport r = runner.run(core::RunMode::kTraceDriven);
    json.add_run("elem" + std::to_string(elem), r);
    const char* note = elem == 512    ? "shipped implementation"
                       : elem == 4096 ? "Fig. 10 projection"
                                      : "";
    table.add_row({bench::fmt("%.0f", static_cast<double>(elem)),
                   bench::fmt("%.3f", r.seconds),
                   bench::fmt("%.3f", r.mic_busy_s),
                   bench::fmt("%.0f", static_cast<double>(r.dma_transfers)),
                   note});
  }
  table.print(std::cout);
  std::cout << "\nDiminishing returns above ~4 KB: the DRAM burst gap is\n"
               "amortized and the run becomes bound elsewhere.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
