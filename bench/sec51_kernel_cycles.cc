// Section 5.1: the computational-kernel cycle measurements.
//
// Paper: "The vectorized version of [the] loop ... takes 590 cycles
// ('do_fixup' off) and 1690 cycles ('do_fixup' on) to execute 216
// Flops. There are 24 and 85 instances of dual issue ... equivalent to
// 64% of the theoretical peak performance in the 'do_fixup off' case.
// In single precision, the number of Flops jumps to 432, and the number
// of cycles drops to approximately 200 ... our efficiency reaches a
// still-respectable 25%."
//
// This bench schedules the actual recorded kernel traces on the SPU
// pipeline model and prints the same quantities per four-cell i-step.
#include "bench/bench_common.h"

#include "core/kernel_timing.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Section 5.1: kernel cycles on the SPU pipeline model");

  cell::CellSpec spec;
  core::KernelCostModel model(spec);
  const int it = opt.cube;
  const int nm = sweep::kBenchmarkMoments;

  // JSON emission: one run per kernel variant, timed as raw pipeline
  // cycles at the chip clock (a microbench, not a full sweep).
  bench::BenchJson json("sec51", opt.cube);
  auto add_kernel_run = [&](const std::string& name,
                            const cell::ScheduleResult& r) {
    core::RunReport rep;
    rep.seconds = static_cast<double>(r.cycles) / spec.clock_hz;
    rep.flops = r.flops;
    rep.cell_solves = static_cast<std::uint64_t>(4) * it;
    rep.grind_seconds = rep.seconds / static_cast<double>(rep.cell_solves);
    rep.achieved_flops_per_s = static_cast<double>(r.flops) / rep.seconds;
    json.add_run(name, rep);
  };

  struct Row {
    const char* name;
    core::Precision prec;
    bool fixup;
    double paper_cycles;
    double paper_flops;
    double paper_dual;
    double paper_eff;  // fraction of peak
  } rows[] = {
      {"DP, fixups off", core::Precision::kDouble, false, 590, 216, 24, 0.64},
      {"DP, fixups on", core::Precision::kDouble, true, 1690, 216, 85, -1},
      {"SP, fixups off", core::Precision::kSingle, false, 200, 432, -1, 0.25},
  };

  util::TextTable table({"kernel", "cycles/step (paper)", "(measured)",
                         "flops/step (paper)", "(measured)",
                         "dual issues (paper)", "(measured)",
                         "% of peak (paper)", "(measured)"});

  for (const Row& row : rows) {
    const cell::ScheduleResult r =
        model.schedule_simd_chunk(row.prec, 4, it, nm, row.fixup);
    add_kernel_run(row.name, r);
    const double steps = it;
    const double cyc = static_cast<double>(r.cycles) / steps;
    const double flops = static_cast<double>(r.flops) / steps;
    const double dual = static_cast<double>(r.dual_issues) / steps;
    const double peak = row.prec == core::Precision::kDouble
                            ? 4.0 / spec.dp_issue_block_cycles
                            : 8.0;
    const double eff = (flops / cyc) / peak;
    auto opt = [](double v, const char* f) {
      return v < 0 ? std::string("-") : bench::fmt(f, v);
    };
    table.add_row({row.name, bench::fmt("%.0f", row.paper_cycles),
                   bench::fmt("%.0f", cyc), bench::fmt("%.0f", row.paper_flops),
                   bench::fmt("%.0f", flops), opt(row.paper_dual, "%.0f"),
                   bench::fmt("%.1f", dual),
                   opt(row.paper_eff < 0 ? -1 : row.paper_eff * 100, "%.0f%%"),
                   bench::fmt("%.0f%%", eff * 100)});
  }
  table.print(std::cout);

  std::cout << "\nNotes: per-step = per jkm i-iteration over the four "
               "logical threads (4 cells DP).\n"
            << "Chip DP peak " << util::format_flops(spec.dp_peak_flops())
            << ", SP peak " << util::format_flops(spec.sp_peak_flops())
            << ".\n";

  // The scalar-SPE kernel for reference (the pre-SIMDization stages).
  util::TextTable scalar({"scalar kernel", "cycles/cell", "note"});
  const auto s_goto = model.schedule_scalar_chunk(core::Precision::kDouble, 4,
                                                  it, nm, false, false);
  const auto s_clean = model.schedule_scalar_chunk(core::Precision::kDouble, 4,
                                                   it, nm, false, true);
  scalar.add_row({"with Fortran gotos",
                  bench::fmt("%.0f", s_goto.cycles / (4.0 * it)),
                  "stage '8 SPEs, initial port'"});
  scalar.add_row({"gotos eliminated",
                  bench::fmt("%.0f", s_clean.cycles / (4.0 * it)),
                  "stage '+ gotos removed'"});
  std::cout << "\n";
  scalar.print(std::cout);
  add_kernel_run("scalar, with Fortran gotos", s_goto);
  add_kernel_run("scalar, gotos eliminated", s_clean);
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
