// Simulated execution of a cluster of Cell chips.
//
// The paper's level-1 parallelism keeps Sweep3D's MPI wavefront over a
// 2-D process grid; perfmodel/wavefront.h models its scaling
// analytically (refs [3,5]). This module *simulates* it instead: every
// rank owns a full per-chip TimingEngine, ranks process their blocks in
// sweep order, and each block is gated on the timed arrival of the
// upstream I/J boundary messages (the RECV of Figure 2) -- so the
// pipeline fill, the MK/MMI granularity trade-off and the link costs
// all emerge from the same machine model that produces the single-chip
// Figure 5 results. A test cross-checks the simulation against the
// analytic model.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/orchestrator.h"

namespace cellsweep::core {

/// Cluster description.
struct ClusterConfig {
  int px = 2;                 ///< process-grid width
  int py = 2;                 ///< process-grid height
  CellSweepConfig chip;       ///< per-chip configuration
  double link_bandwidth = 2e9;    ///< node-to-node bytes/s
  double link_latency_s = 8e-6;   ///< per-message latency
  int nm = sweep::kBenchmarkMoments;  ///< flux moments (working set)
};

/// Result of a simulated cluster run.
struct ClusterReport {
  double seconds = 0;          ///< completion of the slowest rank
  double tile_seconds = 0;     ///< the same tile run in isolation
  double wavefront_efficiency = 0;  ///< tile / cluster time
  double speedup_vs_one_chip = 0;   ///< single chip on the global cube
  std::vector<double> rank_seconds;  ///< per-rank completion times
  std::uint64_t messages = 0;
  double message_bytes = 0;
};

/// Simulates @p cluster on the global grid (materials do not affect
/// timing, so only the grid shape matters). px | it and py | jt.
ClusterReport simulate_cluster(const sweep::Grid& global,
                               const ClusterConfig& cluster);

}  // namespace cellsweep::core
