#include "workloads/stencil/spec.h"

#include <fstream>
#include <sstream>

namespace cellsweep::stencil {
namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  std::ostringstream os;
  os << "stencil spec line " << line << ": " << what;
  throw StencilError(os.str());
}

void check_axis(const char* grid_key, int n, const char* block_key, int b) {
  if (n < 2 || n > 1024)
    throw StencilError(std::string(grid_key) + " must be in [2, 1024], got " +
                       std::to_string(n));
  if (b < 2)
    throw StencilError(std::string(block_key) + " must be at least 2, got " +
                       std::to_string(b));
  if (n % b != 0)
    throw StencilError(std::string(block_key) + " " + std::to_string(b) +
                       " does not divide " + grid_key + " " +
                       std::to_string(n));
}

}  // namespace

void StencilSpec::validate() const {
  check_axis("nx", nx, "bx", bx);
  check_axis("ny", ny, "by", by);
  check_axis("nz", nz, "bz", bz);
  if (cells() > (1LL << 24))
    throw StencilError("grid of " + std::to_string(cells()) +
                       " cells exceeds the 2^24 cap");
  if (iterations < 1 || iterations > 10000)
    throw StencilError("iterations must be in [1, 10000], got " +
                       std::to_string(iterations));
  if (!(h > 0.0))
    throw StencilError("mesh spacing h must be positive");
}

StencilSpec parse_spec(std::istream& in) {
  StencilSpec spec;
  std::string text_line;
  int line_no = 0;
  while (std::getline(in, text_line)) {
    ++line_no;
    const auto hash = text_line.find('#');
    if (hash != std::string::npos) text_line.erase(hash);
    std::istringstream line(text_line);
    std::string key;
    // Several key-value pairs may share one line ("nx 32  ny 32").
    while (line >> key) {
      auto want = [&](auto& v, const char* what) {
        if (!(line >> v))
          fail(line_no,
               std::string("expected ") + what + " after '" + key + "'");
      };
      if (key == "nx") want(spec.nx, "an integer");
      else if (key == "ny") want(spec.ny, "an integer");
      else if (key == "nz") want(spec.nz, "an integer");
      else if (key == "bx") want(spec.bx, "an integer");
      else if (key == "by") want(spec.by, "an integer");
      else if (key == "bz") want(spec.bz, "an integer");
      else if (key == "iterations") want(spec.iterations, "an integer");
      else if (key == "h") want(spec.h, "a number");
      else if (key == "source") want(spec.source, "a number");
      else fail(line_no, "unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

StencilSpec parse_spec_string(const std::string& text) {
  std::istringstream in(text);
  StencilSpec spec = parse_spec(in);
  spec.origin = "<string>";
  return spec;
}

StencilSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw StencilError("cannot open stencil spec " + path);
  StencilSpec spec = parse_spec(in);
  spec.origin = path;
  return spec;
}

}  // namespace cellsweep::stencil
