// Kernel cycle-cost model: records the actual instruction stream of a
// chunk kernel once per shape and schedules it on the SPU pipeline
// model. This is the "compute" leg of the timing simulation and the
// generator of the paper's Section 5.1 numbers (590 / 1690 cycles, 216
// flops, dual-issue counts, % of peak).
//
// * SIMD kernels are recorded by executing sweep_bundle_simd on
//   synthetic line data under an spu::TraceRecorder -- the trace is the
//   real dataflow of the real kernel.
// * Scalar-SPE kernels (the pre-SIMDization stages) are synthesized
//   instruction-by-instruction from the scalar code's per-cell
//   operation sequence, with the serial dependency chains naive scalar
//   code has (and, before the "goto elimination" stage, with unhinted
//   branches).
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "cellsim/spu_pipeline.h"
#include "core/config.h"
#include "spu/trace.h"
#include "sweep/sweeper.h"

namespace cellsweep::core {

/// Cached cost of one chunk shape.
struct ChunkCost {
  double cycles = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t instructions = 0;
  std::uint64_t dual_issues = 0;
  /// The full pipeline schedule of one invocation, kept so the timing
  /// engine can fold per-kernel stats into the per-SPE counter set
  /// instead of discarding them (kernels == 1 per cache entry).
  cell::PipelineStats stats;
};

/// Trace-driven chunk cost cache for one chip spec.
class KernelCostModel {
 public:
  explicit KernelCostModel(const cell::CellSpec& spec) : pipeline_(spec) {}

  /// Cycles (and stats) to process one chunk of @p nlines I-lines of
  /// length @p it with @p nm moments.
  const ChunkCost& chunk_cost(sweep::KernelKind kind, Precision precision,
                              int nlines, int it, int nm, bool fixup,
                              bool gotos_eliminated);

  /// Full pipeline schedule of a SIMD chunk (the Section 5.1 bench
  /// reports these directly). Optionally returns the recorded trace.
  cell::ScheduleResult schedule_simd_chunk(Precision precision, int nlines,
                                           int it, int nm, bool fixup,
                                           spu::Trace* out_trace = nullptr);

  /// Full pipeline schedule of a synthesized scalar-SPE chunk.
  cell::ScheduleResult schedule_scalar_chunk(Precision precision, int nlines,
                                             int it, int nm, bool fixup,
                                             bool gotos_eliminated,
                                             spu::Trace* out_trace = nullptr);

  const cell::SpuPipeline& pipeline() const noexcept { return pipeline_; }

 private:
  using Key = std::tuple<int, int, int, int, int, bool, bool>;
  cell::SpuPipeline pipeline_;
  std::map<Key, ChunkCost> cache_;
};

/// Records the SIMD bundle kernel on synthetic data. @p force_fixups
/// selects line data whose outflows all go negative, so the fixup
/// path's full cost appears in the trace (the paper's "do_fixup on"
/// measurement). Exposed for tests.
spu::Trace record_simd_chunk_trace(Precision precision, int nlines, int it,
                                   int nm, bool fixup);

/// Synthesizes the scalar-SPE per-cell instruction stream. Exposed for
/// tests.
spu::Trace record_scalar_chunk_trace(Precision precision, int nlines, int it,
                                     int nm, bool fixup,
                                     bool gotos_eliminated);

}  // namespace cellsweep::core
