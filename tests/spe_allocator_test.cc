// core::SpeAllocator: the NOVA-style worst-fit claim/yield policy that
// lets concurrent streaming runs share one simulated chip. The tests
// pin the deterministic placement rules (worst-fit from the longest
// run, highest-id-first shrink), the pressure protocol (blocked claims
// force holders to yield; expansion is denied while anyone waits) and
// the accounting the solve server reports.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/spe_allocator.h"

namespace cellsweep::core {
namespace {

/// Spins until @p done() holds (host-time polling; the allocator has no
/// simulated clock). Bounded so a broken wake-up fails, not hangs.
template <typename Pred>
void wait_until(Pred done) {
  for (int spin = 0; spin < 10000 && !done(); ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(done());
}

TEST(SpeAllocator, SoloClaimTakesTheWholeChip) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim c = alloc.claim(1, 8);
  EXPECT_EQ(c.count(), 8);
  EXPECT_EQ(alloc.free_count(), 0);
  EXPECT_FALSE(alloc.pressure());
  alloc.release(c);
  EXPECT_EQ(alloc.free_count(), 8);
  EXPECT_TRUE(c.empty());
}

TEST(SpeAllocator, ArgumentsAreClampedToTheChip) {
  SpeAllocator alloc(4);
  SpeAllocator::Claim c = alloc.claim(0, 99);
  EXPECT_EQ(c.count(), 4);
  alloc.release(c);
  EXPECT_THROW(SpeAllocator bad(0), std::invalid_argument);
}

TEST(SpeAllocator, WorstFitSplitsTheLongestFreeRun) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(2, 2);
  EXPECT_EQ(a.ids, (std::vector<int>{0, 1}));
  // Longest free run is now [2..7]; the next claim splits its head.
  SpeAllocator::Claim b = alloc.claim(2, 2);
  EXPECT_EQ(b.ids, (std::vector<int>{2, 3}));
  // Free: [0..1] released + [4..7] -- worst-fit prefers the longer run.
  alloc.release(a);
  SpeAllocator::Claim c = alloc.claim(3, 3);
  EXPECT_EQ(c.ids, (std::vector<int>{4, 5, 6}));
  // Remaining runs: [0..1] (len 2) and [7] (len 1): a 3-SPE claim
  // stitches them longest-first.
  SpeAllocator::Claim d = alloc.claim(3, 3);
  EXPECT_EQ(d.ids, (std::vector<int>{0, 1, 7}));
  alloc.release(b);
  alloc.release(c);
  alloc.release(d);
  EXPECT_EQ(alloc.free_count(), 8);
}

TEST(SpeAllocator, ShrinkFreesHighestIdsFirst) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8);
  alloc.shrink(a, 5);
  EXPECT_EQ(a.ids, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(alloc.free_count(), 3);
  alloc.release(a);
}

TEST(SpeAllocator, ExpandGrowsTowardTargetWhenFree) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(2, 2);
  EXPECT_EQ(alloc.expand(a, 6), 4);
  EXPECT_EQ(a.count(), 6);
  EXPECT_EQ(alloc.expand(a, 6), 0);  // already there
  EXPECT_EQ(alloc.expand(a, 99), 2);  // clamped to the chip
  EXPECT_EQ(a.count(), 8);
  alloc.release(a);
  EXPECT_EQ(alloc.stats().expands, 2u);
}

TEST(SpeAllocator, ClaimBlocksUntilAHolderYields) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8);
  SpeAllocator::Claim b;
  std::atomic<bool> granted{false};
  std::thread t([&] {
    b = alloc.claim(2, 8);
    granted.store(true);
  });
  wait_until([&] { return alloc.pressure(); });
  EXPECT_FALSE(granted.load());
  // The NOVA yield: the holder sees pressure and shrinks to its fair
  // share (8 / (1 holder + 1 waiter) = 4).
  EXPECT_EQ(alloc.fair_share(), 4);
  alloc.shrink(a, alloc.fair_share());
  t.join();
  EXPECT_TRUE(granted.load());
  // The sole waiter takes everything yielded: [4..7].
  EXPECT_EQ(b.ids, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(alloc.stats().waited_claims, 1u);
  alloc.release(a);
  alloc.release(b);
}

TEST(SpeAllocator, GrantIsCappedAtFairShareWhileOthersWait) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8);
  SpeAllocator::Claim b, c;
  std::thread tb([&] { b = alloc.claim(1, 8); });
  std::thread tc([&] { c = alloc.claim(1, 8); });
  wait_until([&] { return alloc.stats().waited_claims == 2u; });
  // Fair share with 1 holder + 2 waiters is 8/3 = 2: yield to it.
  EXPECT_EQ(alloc.fair_share(), 2);
  alloc.shrink(a, 2);
  tb.join();
  tc.join();
  // Whichever waiter woke first still saw the other waiting, so its
  // grant was capped at the then-fair share (4); the last claimant
  // takes what is left (2). Between them the chip is exactly full.
  std::vector<int> counts{b.count(), c.count()};
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<int>{2, 4}));
  EXPECT_EQ(alloc.free_count(), 0);
  EXPECT_EQ(alloc.stats().peak_tenants, 3);
  alloc.release(a);
  alloc.release(b);
  alloc.release(c);
}

TEST(SpeAllocator, ExpandIsDeniedWhileAnyClaimWaits) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(4, 4);
  SpeAllocator::Claim b;
  std::thread t([&] { b = alloc.claim(8, 8); });
  wait_until([&] { return alloc.pressure(); });
  // Four SPEs are free, but the waiter has first call on them.
  EXPECT_EQ(alloc.expand(a, 8), 0);
  EXPECT_EQ(a.count(), 4);
  alloc.release(a);
  t.join();
  EXPECT_EQ(b.count(), 8);
  alloc.release(b);
}

TEST(SpeAllocator, StatsCountTheWholeLifecycle) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(2, 2);
  SpeAllocator::Claim b = alloc.claim(2, 2);
  alloc.expand(a, 3);
  alloc.shrink(a, 1);
  alloc.release(a);
  alloc.release(b);
  const SpeAllocator::Stats s = alloc.stats();
  EXPECT_EQ(s.claims, 2u);
  EXPECT_EQ(s.expands, 1u);
  EXPECT_EQ(s.shrinks, 3u);  // the explicit shrink + both releases
  EXPECT_EQ(s.waited_claims, 0u);
  EXPECT_EQ(s.peak_tenants, 2);
}


TEST(SpeAllocator, ShrinkToFairShareIsANoOpWithoutWaiters) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8);
  // No pressure: the atomic yield must refuse to touch the claim, so a
  // solo tenant keeps the whole chip (the byte-identical-timing
  // guarantee the perf baselines pin).
  EXPECT_FALSE(alloc.shrink_to_fair_share(a, /*need=*/8, /*min_spes=*/1));
  EXPECT_EQ(a.count(), 8);
  EXPECT_EQ(alloc.stats().shrinks, 0u);
  alloc.release(a);
}

TEST(SpeAllocator, ShrinkToFairShareYieldsToABlockedClaimant) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8);
  SpeAllocator::Claim b;
  std::atomic<bool> granted{false};
  std::thread t([&] {
    b = alloc.claim(2, 8);
    granted.store(true);
  });
  wait_until([&] { return alloc.pressure(); });
  EXPECT_FALSE(granted.load());
  // One decision, one critical section: pressure is observed, the fair
  // share (8 / 2 = 4) computed and the yield performed without the lock
  // ever dropping in between.
  EXPECT_TRUE(alloc.shrink_to_fair_share(a, /*need=*/8, /*min_spes=*/1));
  EXPECT_EQ(a.count(), 4);
  t.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(b.ids, (std::vector<int>{4, 5, 6, 7}));
  // Repeating the yield with the waiter served changes nothing.
  EXPECT_FALSE(alloc.shrink_to_fair_share(a, /*need=*/8, /*min_spes=*/1));
  EXPECT_EQ(a.count(), 4);
  alloc.release(a);
  alloc.release(b);
}

TEST(SpeAllocator, ShrinkToFairShareRespectsNeedAndFloor) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8);
  SpeAllocator::Claim b;
  std::thread t([&] { b = alloc.claim(1, 1); });
  wait_until([&] { return alloc.pressure(); });
  // Fair share is 4, but a batch that can only feed two SPEs yields
  // down to need=2 -- never below the min_spes floor (3 here), which
  // wins when it is higher than what the batch needs.
  EXPECT_TRUE(alloc.shrink_to_fair_share(a, /*need=*/2, /*min_spes=*/3));
  EXPECT_EQ(a.count(), 3);
  t.join();
  EXPECT_EQ(b.count(), 1);
  // Already at the target: a second yield reports nothing to give even
  // under renewed pressure.
  SpeAllocator::Claim c;
  std::thread t2([&] { c = alloc.claim(8, 8); });
  wait_until([&] { return alloc.pressure(); });
  EXPECT_FALSE(alloc.shrink_to_fair_share(a, /*need=*/2, /*min_spes=*/3));
  alloc.release(a);
  alloc.release(b);
  t2.join();
  alloc.release(c);
}

TEST(SpeAllocatorQos, QuotaCapsGrantExpandAndMinimum) {
  SpeAllocator alloc(8);
  // The quota is a hard ceiling on the grant...
  SpeAllocator::Claim a = alloc.claim(1, 8, /*weight=*/1, /*quota=*/3);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.quota, 3);
  // ... and on every later expand, even with the chip free.
  EXPECT_EQ(alloc.expand(a, 8), 0);
  EXPECT_EQ(a.count(), 3);
  // A minimum above the quota is pulled down to it, not deadlocked on.
  SpeAllocator::Claim b = alloc.claim(4, 8, /*weight=*/1, /*quota=*/2);
  EXPECT_EQ(b.count(), 2);
  alloc.release(a);
  alloc.release(b);
  // Weight alone never caps a solo tenant: the whole chip, as always.
  SpeAllocator::Claim c = alloc.claim(1, 8, /*weight=*/5);
  EXPECT_EQ(c.count(), 8);
  alloc.release(c);
}

TEST(SpeAllocatorQos, WeightedSharesPartitionTheChipUnderFullPressure) {
  // Weights {2,1,1} on an 8-SPE chip must settle at {4,2,2}: the
  // weighted shares sum to the whole chip under full pressure.
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8, /*weight=*/2);
  SpeAllocator::Claim b, c;
  std::thread tb([&] { b = alloc.claim(1, 8, /*weight=*/1); });
  std::thread tc([&] { c = alloc.claim(1, 8, /*weight=*/1); });
  wait_until([&] { return alloc.stats().waited_claims == 2u; });
  // Everyone visible: total weight 4, so the weight-2 holder's share
  // is 8 * 2/4 = 4 and each weight-1 party's is 8 * 1/4 = 2.
  EXPECT_EQ(alloc.fair_share(2), 4);
  EXPECT_EQ(alloc.fair_share(1), 2);
  EXPECT_TRUE(alloc.shrink_to_fair_share(a, /*need=*/8, /*min_spes=*/1));
  EXPECT_EQ(a.count(), 4);
  tb.join();
  tc.join();
  std::vector<int> counts{b.count(), c.count()};
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<int>{2, 2}));
  EXPECT_EQ(alloc.free_count(), 0);
  alloc.release(a);
  alloc.release(b);
  alloc.release(c);
}

TEST(SpeAllocatorQos, PriorityPressureSignalsStrictlyHigherWeightOnly) {
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8, /*weight=*/1);
  SpeAllocator::Claim b;
  std::thread t([&] { b = alloc.claim(1, 8, /*weight=*/3); });
  wait_until([&] { return alloc.pressure(); });
  // A weight-3 claim is blocked: weight-1 and weight-2 holders must
  // yield now; a weight-3 (equal) or heavier holder need not.
  EXPECT_TRUE(alloc.priority_pressure(1));
  EXPECT_TRUE(alloc.priority_pressure(2));
  EXPECT_FALSE(alloc.priority_pressure(3));
  EXPECT_FALSE(alloc.priority_pressure(4));
  // The weighted yield in one critical section: the weight-1 holder's
  // share against the weight-3 waiter is 8 * 1/4 = 2.
  EXPECT_TRUE(alloc.shrink_to_fair_share(a, /*need=*/8, /*min_spes=*/1));
  EXPECT_EQ(a.count(), 2);
  t.join();
  // The lone waiter takes everything yielded once nobody else queues.
  EXPECT_EQ(b.count(), 6);
  EXPECT_FALSE(alloc.priority_pressure(1));  // nobody blocked anymore
  alloc.release(a);
  alloc.release(b);
}

TEST(SpeAllocatorQos, EveryWaiterIsServedUnderRepeatedYields) {
  // Bounded wait: with the holder yielding at its "batch boundaries",
  // every queued claim -- whatever its weight -- is eventually granted;
  // nobody starves behind heavier tenants.
  SpeAllocator alloc(8);
  SpeAllocator::Claim a = alloc.claim(8, 8, /*weight=*/4);
  std::atomic<int> granted{0};
  std::vector<std::thread> claimants;
  for (int w = 1; w <= 3; ++w) {
    claimants.emplace_back([&alloc, &granted, w] {
      SpeAllocator::Claim c = alloc.claim(1, 2, /*weight=*/w);
      EXPECT_GE(c.count(), 1);
      EXPECT_LE(c.count(), 2);
      granted.fetch_add(1);
      alloc.release(c);
    });
  }
  // The holder's yield loop: shrink toward the (shifting) fair share
  // whenever pressure shows, regrow opportunistically when it clears.
  wait_until([&] {
    alloc.shrink_to_fair_share(a, /*need=*/8, /*min_spes=*/1);
    if (!alloc.pressure()) alloc.expand(a, 8);
    return granted.load() == 3;
  });
  for (std::thread& t : claimants) t.join();
  // At least one claimant must have queued behind the full holder; the
  // exact count is racy -- a claimant arriving in the window between a
  // peer's release and the holder's regrow is granted without waiting.
  EXPECT_GE(alloc.stats().waited_claims, 1u);
  EXPECT_LE(alloc.stats().waited_claims, 3u);
  alloc.release(a);
  EXPECT_EQ(alloc.free_count(), 8);
}

}  // namespace
}  // namespace cellsweep::core
